#include "core/extension.h"

#include <gtest/gtest.h>

#include <vector>

#include "query/queries.h"
#include "query/rbi.h"
#include "query/symmetry_breaking.h"

namespace dualsim {
namespace {

/// Builds the RBI graph for q with its symmetry-breaking orders.
RbiQueryGraph MakeRbi(const QueryGraph& q) {
  return GenerateRbiQueryGraph(q, FindPartialOrders(q));
}

/// Non-red extension of the triangle: red = {0,1}, vertex 2 is ivory.
TEST(ExtensionTest, TriangleIvoryIntersection) {
  RbiQueryGraph rbi = MakeRbi(MakeCliqueQuery(3));
  ASSERT_EQ(rbi.red.size(), 2u);

  // adj lists of the two red data vertices: common neighbors {7, 9}.
  const std::vector<VertexId> adj0 = {2, 7, 9, 11};
  const std::vector<VertexId> adj1 = {3, 7, 9};
  std::vector<VertexId> mapping = {5, 6, kNoVertex};
  std::vector<std::span<const VertexId>> red_adj(3);
  red_adj[rbi.red[0]] = adj0;
  red_adj[rbi.red[1]] = adj1;

  std::vector<QueryVertex> nonred = {2};
  std::vector<std::vector<VertexId>> seen;
  FullEmbeddingFn fn = [&](std::span<const VertexId> m) {
    seen.emplace_back(m.begin(), m.end());
  };
  const std::uint64_t count =
      ExtendNonRed(rbi, nonred, mapping, red_adj, {}, &fn);
  // PO of the triangle is 0<1<2: candidates must exceed m(1)=6: both 7,9.
  EXPECT_EQ(count, 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0][2], 7u);
  EXPECT_EQ(seen[1][2], 9u);
  // Mapping restored.
  EXPECT_EQ(mapping[2], kNoVertex);
}

TEST(ExtensionTest, PartialOrderPrunesCandidates) {
  RbiQueryGraph rbi = MakeRbi(MakeCliqueQuery(3));
  const std::vector<VertexId> adj0 = {1, 2, 3, 4};
  const std::vector<VertexId> adj1 = {1, 2, 3, 4};
  // m(0)=2, m(1)=3 => ivory candidates must be > 3: only 4.
  std::vector<VertexId> mapping = {2, 3, kNoVertex};
  std::vector<std::span<const VertexId>> red_adj(3);
  red_adj[rbi.red[0]] = adj0;
  red_adj[rbi.red[1]] = adj1;
  std::vector<QueryVertex> nonred = {2};
  EXPECT_EQ(ExtendNonRed(rbi, nonred, mapping, red_adj, {}, nullptr), 1u);
}

TEST(ExtensionTest, InjectivityExcludesMappedVertices) {
  // Star query: red = center 0, leaves black. Leaves scan adj(m(0)) but
  // must be pairwise distinct.
  RbiQueryGraph rbi = MakeRbi(MakeStarQuery(2));
  ASSERT_EQ(rbi.red.size(), 1u);
  const std::vector<VertexId> adj_center = {5, 6};
  std::vector<VertexId> mapping = {1, kNoVertex, kNoVertex};
  std::vector<std::span<const VertexId>> red_adj(3);
  red_adj[0] = adj_center;
  std::vector<QueryVertex> nonred = {1, 2};
  // Orders: star leaves are symmetric => 1 < 2. Assignments: (5,6) only.
  EXPECT_EQ(ExtendNonRed(rbi, nonred, mapping, red_adj, {}, nullptr), 1u);
}

TEST(ExtensionTest, EmptyNonRedCountsOne) {
  // A query whose red set covers everything non-trivially doesn't occur
  // for connected covers of the paper queries, but the extension must
  // handle an empty order list: it reports exactly one embedding.
  RbiQueryGraph rbi = MakeRbi(MakeCliqueQuery(3));
  std::vector<VertexId> mapping = {1, 2, 3};  // pretend all mapped
  std::vector<std::span<const VertexId>> red_adj(3);
  EXPECT_EQ(ExtendNonRed(rbi, {}, mapping, red_adj, {}, nullptr), 1u);
}

TEST(ExtensionTest, BlackVertexScansWholeList) {
  // Path P3: red = {1} (the middle), 0 and 2 black; orders: 0 < 2.
  RbiQueryGraph rbi = MakeRbi(MakePathQuery(3));
  ASSERT_EQ(rbi.red.size(), 1u);
  EXPECT_EQ(rbi.red[0], 1u);
  const std::vector<VertexId> adj_mid = {10, 20, 30};
  std::vector<VertexId> mapping = {kNoVertex, 5, kNoVertex};
  std::vector<std::span<const VertexId>> red_adj(3);
  red_adj[1] = adj_mid;
  std::vector<QueryVertex> nonred = {0, 2};
  // Ordered pairs from {10,20,30} with m(0) < m(2): C(3,2) = 3.
  EXPECT_EQ(ExtendNonRed(rbi, nonred, mapping, red_adj, {}, nullptr), 3u);
}

}  // namespace
}  // namespace dualsim
