#include "distsim/partitioner.h"

#include <gtest/gtest.h>

#include <numeric>

#include "distsim/cluster.h"
#include "graph/generators.h"
#include "query/queries.h"

namespace dualsim {
namespace {

TEST(PartitionerTest, EdgesConserved) {
  Graph g = ErdosRenyi(300, 1200, 3);
  PartitionStats stats = HashPartition(g, 10);
  EXPECT_EQ(stats.num_parts, 10);
  const std::uint64_t total = std::accumulate(
      stats.edges_per_part.begin(), stats.edges_per_part.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, g.NumEdges());
}

TEST(PartitionerTest, SinglePartHasNoCut) {
  Graph g = ErdosRenyi(100, 400, 5);
  PartitionStats stats = HashPartition(g, 1);
  EXPECT_EQ(stats.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.skew, 1.0);
  EXPECT_EQ(stats.edges_per_part[0], g.NumEdges());
}

TEST(PartitionerTest, ManyPartsCutMostEdges) {
  // With p parts and hash placement, an edge stays local with prob ~1/p.
  Graph g = ErdosRenyi(500, 3000, 7);
  PartitionStats stats = HashPartition(g, 50);
  EXPECT_GT(stats.cut_fraction, 0.9);
  EXPECT_LT(stats.cut_fraction, 1.0);
}

TEST(PartitionerTest, SkewAtLeastOneAndDeterministic) {
  Graph g = RMat(9, 3000, 0.6, 0.15, 0.15, 11);
  PartitionStats a = HashPartition(g, 16);
  PartitionStats b = HashPartition(g, 16);
  EXPECT_GE(a.skew, 1.0);
  EXPECT_EQ(a.edges_per_part, b.edges_per_part);
  // Skewed graphs partition unevenly: hubs concentrate edges.
  EXPECT_GT(a.skew, 1.2);
}

TEST(PartitionerTest, SeedChangesPlacement) {
  Graph g = ErdosRenyi(200, 900, 13);
  PartitionStats a = HashPartition(g, 8, /*seed=*/1);
  PartitionStats b = HashPartition(g, 8, /*seed=*/2);
  EXPECT_NE(a.edges_per_part, b.edges_per_part);
}

TEST(PartitionerTest, MeasuredSkewFeedsClusterModel) {
  Graph g = RMat(8, 1500, 0.6, 0.15, 0.15, 17);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);
  // The model's CPU term scales the *measured* wall-clock of the
  // in-process run, so take the min of a few repetitions per config to
  // reject scheduler noise (the suite runs under parallel ctest load).
  auto best_of = [&](const ClusterConfig& config) {
    double best = -1.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto run = RunOnCluster(ClusterSystem::kPsgl, g, q, config);
      if (!run.ok() || run->failed) continue;
      if (best < 0 || run->elapsed_seconds < best) best = run->elapsed_seconds;
    }
    return best;
  };
  ClusterConfig config;
  config.partition_skew = -1.0;  // ask RunOnCluster to measure it
  const double measured = best_of(config);
  // Same run with an absurd fixed skew must model a (weakly) longer time.
  config.partition_skew = 50.0;
  const double skewed = best_of(config);
  if (measured >= 0 && skewed >= 0) {
    EXPECT_GE(skewed, measured);
  }
}

}  // namespace
}  // namespace dualsim
