#include "distsim/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "distsim/cluster.h"
#include "graph/generators.h"
#include "query/queries.h"

namespace dualsim {
namespace {

TEST(PartitionerTest, EdgesConserved) {
  Graph g = ErdosRenyi(300, 1200, 3);
  PartitionStats stats = HashPartition(g, 10);
  EXPECT_EQ(stats.num_parts, 10);
  const std::uint64_t total = std::accumulate(
      stats.edges_per_part.begin(), stats.edges_per_part.end(),
      std::uint64_t{0});
  EXPECT_EQ(total, g.NumEdges());
}

TEST(PartitionerTest, SinglePartHasNoCut) {
  Graph g = ErdosRenyi(100, 400, 5);
  PartitionStats stats = HashPartition(g, 1);
  EXPECT_EQ(stats.cut_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.skew, 1.0);
  EXPECT_EQ(stats.edges_per_part[0], g.NumEdges());
}

TEST(PartitionerTest, ManyPartsCutMostEdges) {
  // With p parts and hash placement, an edge stays local with prob ~1/p.
  Graph g = ErdosRenyi(500, 3000, 7);
  PartitionStats stats = HashPartition(g, 50);
  EXPECT_GT(stats.cut_fraction, 0.9);
  EXPECT_LT(stats.cut_fraction, 1.0);
}

TEST(PartitionerTest, SkewAtLeastOneAndDeterministic) {
  Graph g = RMat(9, 3000, 0.6, 0.15, 0.15, 11);
  PartitionStats a = HashPartition(g, 16);
  PartitionStats b = HashPartition(g, 16);
  EXPECT_GE(a.skew, 1.0);
  EXPECT_EQ(a.edges_per_part, b.edges_per_part);
  // Skewed graphs partition unevenly: hubs concentrate edges.
  EXPECT_GT(a.skew, 1.2);
}

TEST(PartitionerTest, SeedChangesPlacement) {
  Graph g = ErdosRenyi(200, 900, 13);
  PartitionStats a = HashPartition(g, 8, /*seed=*/1);
  PartitionStats b = HashPartition(g, 8, /*seed=*/2);
  EXPECT_NE(a.edges_per_part, b.edges_per_part);
}

TEST(PartitionerTest, ManifestExportsDeterministicOwnership) {
  Graph g = ErdosRenyi(250, 1100, 21);
  const int parts = 4;
  const std::uint64_t seed = 9;
  const PartitionManifest m = BuildPartitionManifest(g, parts, seed);
  ASSERT_EQ(m.num_parts, parts);
  ASSERT_EQ(m.seed, seed);
  ASSERT_EQ(m.home.size(), g.NumVertices());
  ASSERT_EQ(m.is_boundary.size(), g.NumVertices());
  ASSERT_EQ(m.owner.size(), g.NumVertices());

  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    // home is the pure hash — the only thing the wire ever carries.
    EXPECT_EQ(m.home[v], PartitionOf(v, parts, seed));
    // The ownership rule: lowest part id among v's appearances (its home
    // plus each neighbor's home where v is replicated as a ghost).
    int lowest = m.home[v];
    bool boundary = false;
    for (VertexId u : g.Neighbors(v)) {
      const int up = PartitionOf(u, parts, seed);
      if (up != m.home[v]) boundary = true;
      lowest = std::min(lowest, up);
    }
    EXPECT_EQ(m.is_boundary[v] != 0, boundary) << "v=" << v;
    EXPECT_EQ(m.owner[v], lowest) << "v=" << v;
    if (!boundary) {
      EXPECT_EQ(m.owner[v], m.home[v]) << "v=" << v;
    }
    EXPECT_LE(m.owner[v], m.home[v]) << "v=" << v;
  }

  // Determinism: the manifest is a pure function of (graph, parts, seed).
  const PartitionManifest again = BuildPartitionManifest(g, parts, seed);
  EXPECT_EQ(again.home, m.home);
  EXPECT_EQ(again.is_boundary, m.is_boundary);
  EXPECT_EQ(again.owner, m.owner);

  // A different seed must actually move vertices (otherwise "seed" in the
  // wire scope is dead weight and dedup could silently diverge).
  const PartitionManifest reseeded = BuildPartitionManifest(g, parts, 10);
  EXPECT_NE(reseeded.home, m.home);
}

TEST(PartitionerTest, EmbeddingOwnerAgreesWithTouchRule) {
  const int parts = 3;
  const std::uint64_t seed = 5;
  Graph g = ErdosRenyi(120, 500, 33);
  // Synthetic embeddings: any vertex tuple exercises the pure functions.
  for (VertexId a = 0; a < 40; ++a) {
    const std::vector<VertexId> m = {a, (a * 7 + 3) % 120, (a * 13 + 1) % 120};
    const int owner = EmbeddingOwner({m.data(), m.size()}, parts, seed);
    int expected = parts;
    for (VertexId v : m) expected = std::min(expected, PartitionOf(v, parts, seed));
    EXPECT_EQ(owner, expected);
    // The owner is always among the touched parts, and only parts homing
    // a matched vertex are touched — the pair of rules that makes the
    // coordinator's merge exactly-once.
    EXPECT_TRUE(EmbeddingTouches({m.data(), m.size()}, owner, parts, seed));
    for (int p = 0; p < parts; ++p) {
      bool homes = false;
      for (VertexId v : m) homes |= PartitionOf(v, parts, seed) == p;
      EXPECT_EQ(EmbeddingTouches({m.data(), m.size()}, p, parts, seed), homes);
      if (p < owner) {
        EXPECT_FALSE(EmbeddingTouches({m.data(), m.size()}, p, parts, seed));
      }
    }
  }
}

TEST(PartitionerTest, MeasuredSkewFeedsClusterModel) {
  Graph g = RMat(8, 1500, 0.6, 0.15, 0.15, 17);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);
  // The model's CPU term scales the *measured* wall-clock of the
  // in-process run, so take the min of a few repetitions per config to
  // reject scheduler noise (the suite runs under parallel ctest load).
  auto best_of = [&](const ClusterConfig& config) {
    double best = -1.0;
    for (int rep = 0; rep < 3; ++rep) {
      auto run = RunOnCluster(ClusterSystem::kPsgl, g, q, config);
      if (!run.ok() || run->failed) continue;
      if (best < 0 || run->elapsed_seconds < best) best = run->elapsed_seconds;
    }
    return best;
  };
  ClusterConfig config;
  config.partition_skew = -1.0;  // ask RunOnCluster to measure it
  const double measured = best_of(config);
  // Same run with an absurd fixed skew must model a (weakly) longer time.
  config.partition_skew = 50.0;
  const double skewed = best_of(config);
  if (measured >= 0 && skewed >= 0) {
    EXPECT_GE(skewed, measured);
  }
}

}  // namespace
}  // namespace dualsim
