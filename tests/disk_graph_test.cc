#include "storage/disk_graph.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "storage/io_backend.h"
#include "util/thread_pool.h"

namespace dualsim {
namespace {

/// Round-trip verification runs once per I/O backend: the read-back path
/// goes through the backend under test, so a backend that corrupts or
/// drops bytes fails the content comparison. The uring variant skips
/// gracefully when io_uring is unavailable.
class DiskGraphTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_dg_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    if (GetParam() == "uring" && !UringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable: " << UringUnavailableReason();
    }
    io_ = std::make_unique<ThreadPool>(2);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) { return (dir_ / name).string(); }

  /// One page read through the backend under test.
  Status ReadVia(DiskGraph& disk, PageId pid, std::byte* out) {
    if (backend_ == nullptr) {
      auto kind = ParseIoBackendKind(GetParam());
      EXPECT_TRUE(kind.ok()) << kind.status().ToString();
      auto backend = CreateIoBackend(*kind, &disk.file(), io_.get());
      EXPECT_TRUE(backend.ok()) << backend.status().ToString();
      backend_ = std::move(*backend);
    }
    return backend_->ReadPage(pid, out);
  }

  /// Reads back the whole database through PageViews and compares with g.
  void VerifyContents(const Graph& g, DiskGraph& disk) {
    std::vector<std::vector<VertexId>> adj(g.NumVertices());
    std::vector<std::byte> buf(disk.page_size());
    for (PageId pid = 0; pid < disk.num_pages(); ++pid) {
      ASSERT_TRUE(ReadVia(disk, pid, buf.data()).ok());
      PageView view(buf.data(), disk.page_size());
      for (std::uint32_t s = 0; s < view.NumRecords(); ++s) {
        VertexRecord rec = view.GetRecord(s);
        auto& list = adj[rec.vertex];
        ASSERT_EQ(rec.sublist_offset, list.size())
            << "sublists must arrive in order";
        list.insert(list.end(), rec.neighbors.begin(), rec.neighbors.end());
      }
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      auto want = g.Neighbors(v);
      ASSERT_EQ(adj[v].size(), want.size()) << "vertex " << v;
      EXPECT_TRUE(std::equal(want.begin(), want.end(), adj[v].begin()));
    }
    // The backend is bound to this disk's PageFile; do not let it outlive
    // the test-local DiskGraph.
    backend_.reset();
  }

  std::filesystem::path dir_;
  std::unique_ptr<ThreadPool> io_;
  std::unique_ptr<IoBackend> backend_;
};

TEST_P(DiskGraphTest, BuildAndOpenRoundTrip) {
  Graph g = ReorderByDegree(ErdosRenyi(120, 400, 3));
  const std::string path = PathFor("g.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ((*disk)->num_vertices(), g.NumVertices());
  EXPECT_EQ((*disk)->num_edges(), g.NumEdges());
  EXPECT_TRUE((*disk)->AllSinglePage());
  VerifyContents(g, **disk);
}

TEST_P(DiskGraphTest, FirstPageMapIsMonotone) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 700, 5));
  const std::string path = PathFor("mono.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 256).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok());
  // Lemma 1: pages are assigned in vertex-id order.
  for (VertexId v = 0; v + 1 < g.NumVertices(); ++v) {
    EXPECT_LE((*disk)->FirstPageOf(v), (*disk)->FirstPageOf(v + 1));
  }
  // first_vertex is consistent with first_page.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const PageId p = (*disk)->FirstPageOf(v);
    EXPECT_LE((*disk)->FirstVertexOf(p), v);
  }
}

TEST_P(DiskGraphTest, LargeAdjacencySplitsIntoSublists) {
  // A star whose hub exceeds one tiny page.
  Graph g = Star(200);  // hub degree 199 >> capacity of a 128B page
  const std::string path = PathFor("split.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 128).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_FALSE((*disk)->AllSinglePage());
  VerifyContents(g, **disk);
}

TEST_P(DiskGraphTest, RequireSinglePageRejectsBigVertices) {
  Graph g = Star(200);
  EXPECT_EQ(BuildDiskGraph(g, PathFor("rej.db"), 128,
                           /*require_single_page=*/true)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_P(DiskGraphTest, MultiPageCatalogFields) {
  Graph g = Star(200);  // hub spans several 128-byte pages
  const std::string path = PathFor("cat.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 128).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_GT((*disk)->MaxVertexPages(), 1u);
  // Exactly one vertex (the hub, which is the last id after degree order:
  // here the raw star has hub id 0) spans pages.
  std::uint32_t split_vertices = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_LE((*disk)->FirstPageOf(v), (*disk)->LastPageOf(v));
    if ((*disk)->LastPageOf(v) > (*disk)->FirstPageOf(v)) ++split_vertices;
  }
  EXPECT_EQ(split_vertices, 1u);
  // SpansBeyond is true exactly for the hub's non-final pages.
  const VertexId hub = 0;
  for (PageId p = (*disk)->FirstPageOf(hub); p < (*disk)->LastPageOf(hub);
       ++p) {
    EXPECT_TRUE((*disk)->SpansBeyond(p)) << p;
  }
  EXPECT_FALSE((*disk)->SpansBeyond((*disk)->LastPageOf(hub)));
  EXPECT_EQ((*disk)->MaxVertexPages(),
            (*disk)->LastPageOf(hub) - (*disk)->FirstPageOf(hub) + 1);
}

TEST_P(DiskGraphTest, SinglePageGraphHasTrivialSpans) {
  Graph g = ReorderByDegree(ErdosRenyi(100, 300, 3));
  const std::string path = PathFor("sp.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 4096).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->MaxVertexPages(), 1u);
  for (PageId p = 0; p < (*disk)->num_pages(); ++p) {
    EXPECT_FALSE((*disk)->SpansBeyond(p));
  }
}

TEST_P(DiskGraphTest, OpenWithoutMetaFails) {
  EXPECT_FALSE(DiskGraph::Open(PathFor("missing.db")).ok());
}

TEST_P(DiskGraphTest, TinyGraphRoundTrip) {
  Graph g = Path(3);  // vertex degrees 1,2,1
  const std::string path = PathFor("p3.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 256).ok());
  auto disk = DiskGraph::Open(path);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->num_vertices(), 3u);
  VerifyContents(g, **disk);
}

TEST_P(DiskGraphTest, VerifyAdjacencyAcceptsFreshBuild) {
  Graph g = ReorderByDegree(RMat(8, 700, 0.55, 0.15, 0.15, 4));
  const std::string path = PathFor("verify.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  bool degree_ordered = false;
  Status s = (*disk)->VerifyAdjacency(&degree_ordered);
  EXPECT_TRUE(s.ok()) << s.ToString();
  // Built from a ReorderByDegree graph: the ≺-order (degree) layout the
  // intersection dispatcher's skew assumptions come from must hold.
  EXPECT_TRUE(degree_ordered);
}

TEST_P(DiskGraphTest, VerifyAdjacencyReportsNonDegreeOrderedLayout) {
  // A star written without reordering: vertex 0 has the largest degree
  // and comes first, so degrees are decreasing — valid, but flagged.
  GraphBuilder builder(11);
  for (VertexId leaf = 1; leaf <= 10; ++leaf) builder.AddEdge(0, leaf);
  Graph g = builder.Build();
  const std::string path = PathFor("star.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  bool degree_ordered = true;
  Status s = (*disk)->VerifyAdjacency(&degree_ordered);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(degree_ordered);
}

TEST_P(DiskGraphTest, VerifyAdjacencyDetectsUnsortedNeighbors) {
  Graph g = ReorderByDegree(Complete(8));  // every record has >= 2 neighbors
  const std::string path = PathFor("corrupt.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  {
    // Swap the first record's first two neighbors in place: record 0
    // starts right after the 8-byte page header, neighbors follow the
    // 16-byte record header.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const std::streamoff neighbors_at = 8 + 16;
    VertexId n0 = 0;
    VertexId n1 = 0;
    f.seekg(neighbors_at);
    f.read(reinterpret_cast<char*>(&n0), sizeof(n0));
    f.read(reinterpret_cast<char*>(&n1), sizeof(n1));
    ASSERT_NE(n0, n1);
    f.seekp(neighbors_at);
    f.write(reinterpret_cast<char*>(&n1), sizeof(n1));
    f.write(reinterpret_cast<char*>(&n0), sizeof(n0));
  }
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  Status s = (*disk)->VerifyAdjacency();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not sorted"), std::string::npos)
      << s.ToString();
}

TEST_P(DiskGraphTest, OpenRejectsNonMonotoneCatalog) {
  Graph g = ReorderByDegree(ErdosRenyi(60, 200, 5));
  const std::string path = PathFor("badmeta.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  {
    // Point vertex 1's first page past the end of the file: the load-time
    // catalog check (Lemma 1 layout) must reject it before any page read.
    std::fstream f(path + ".meta",
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    const std::streamoff header_bytes = 40;
    PageId bogus = 0x7FFFFFFF;
    f.seekp(header_bytes + static_cast<std::streamoff>(sizeof(PageId)));
    f.write(reinterpret_cast<char*>(&bogus), sizeof(bogus));
  }
  auto disk = DiskGraph::Open(path, false);
  EXPECT_FALSE(disk.ok());
  EXPECT_NE(disk.status().ToString().find("catalog corruption"),
            std::string::npos)
      << disk.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Backends, DiskGraphTest,
                         ::testing::Values("threadpool", "uring"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dualsim
