#include "query/symmetry_breaking.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "query/isomorphism.h"
#include "query/queries.h"

namespace dualsim {
namespace {

/// The defining property of symmetry breaking: over all n! injections of
/// query vertices onto themselves... more usefully, over all assignments of
/// distinct integer "ranks", exactly one representative per automorphism
/// orbit satisfies the partial orders. We verify directly: among the |Aut|
/// relabelings of any fixed assignment, exactly one satisfies PO.
void VerifyExactlyOnePerOrbit(const QueryGraph& q) {
  const auto orders = FindPartialOrders(q);
  const auto autos = Automorphisms(q);
  const std::uint8_t n = q.NumVertices();
  // A fixed injective assignment of data ids (use 10, 20, ...).
  std::vector<int> base(n);
  for (std::uint8_t v = 0; v < n; ++v) base[v] = 10 * (v + 1);
  // Permute the assignment by each automorphism; m_sigma(u) = base[sigma(u)].
  int satisfying = 0;
  for (const QueryPermutation& sigma : autos) {
    std::vector<int> m(n);
    for (QueryVertex u = 0; u < n; ++u) m[u] = base[sigma[u]];
    if (SatisfiesPartialOrders(orders, m)) ++satisfying;
  }
  EXPECT_EQ(satisfying, 1) << q.ToString();
}

TEST(SymmetryBreakingTest, TriangleFullOrder) {
  // Paper §2: "if we have a triangle-shaped query ... partial orders
  // u1 < u2 < u3 can be obtained."
  auto orders = FindPartialOrders(MakeCliqueQuery(3));
  EXPECT_EQ(orders.size(), 3u);  // 0<1, 0<2, 1<2
}

TEST(SymmetryBreakingTest, ExactlyOneRepresentativePerOrbit) {
  for (PaperQuery pq : AllPaperQueries()) {
    VerifyExactlyOnePerOrbit(MakePaperQuery(pq));
  }
  VerifyExactlyOnePerOrbit(MakePathQuery(2));
  VerifyExactlyOnePerOrbit(MakePathQuery(5));
  VerifyExactlyOnePerOrbit(MakeStarQuery(4));
  VerifyExactlyOnePerOrbit(MakeCliqueQuery(5));
  VerifyExactlyOnePerOrbit(MakeCycleQuery(5));
  VerifyExactlyOnePerOrbit(MakeCycleQuery(6));
}

TEST(SymmetryBreakingTest, AsymmetricQueryNeedsNoOrders) {
  // Asymmetric tree (branches of lengths 1, 2, 3): no symmetry to break.
  QueryGraph q(7);
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(2, 3);
  q.AddEdge(0, 4);
  q.AddEdge(4, 5);
  q.AddEdge(5, 6);
  EXPECT_TRUE(FindPartialOrders(q).empty());
}

TEST(SymmetryBreakingTest, CliqueOrdersAreTotal) {
  for (int n = 2; n <= 5; ++n) {
    auto orders = FindPartialOrders(MakeCliqueQuery(n));
    // A clique needs a full chain: n(n-1)/2 comparisons or equivalent.
    // Verify transitively that every pair is ordered.
    std::vector<std::vector<bool>> lt(n, std::vector<bool>(n, false));
    for (const auto& o : orders) lt[o.first][o.second] = true;
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          if (lt[i][k] && lt[k][j]) lt[i][j] = true;
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j) EXPECT_TRUE(lt[i][j] || lt[j][i]) << n << " " << i << j;
      }
    }
  }
}

TEST(SymmetryBreakingTest, SatisfiesPartialOrdersHelper) {
  std::vector<PartialOrder> orders = {{0, 1}, {1, 2}};
  std::vector<int> good = {1, 2, 3};
  std::vector<int> bad = {2, 1, 3};
  EXPECT_TRUE(SatisfiesPartialOrders(orders, good));
  EXPECT_FALSE(SatisfiesPartialOrders(orders, bad));
}

}  // namespace
}  // namespace dualsim
