#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/datasets.h"

namespace dualsim {
namespace {

TEST(GeneratorsTest, CompleteGraph) {
  Graph g = Complete(6);
  EXPECT_EQ(g.NumVertices(), 6u);
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5u);
}

TEST(GeneratorsTest, CycleAndPath) {
  Graph c = Cycle(5);
  EXPECT_EQ(c.NumEdges(), 5u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(c.Degree(v), 2u);
  Graph p = Path(5);
  EXPECT_EQ(p.NumEdges(), 4u);
  EXPECT_EQ(p.Degree(0), 1u);
  EXPECT_EQ(p.Degree(2), 2u);
}

TEST(GeneratorsTest, Star) {
  Graph s = Star(7);
  EXPECT_EQ(s.NumEdges(), 6u);
  EXPECT_EQ(s.Degree(0), 6u);
  EXPECT_EQ(s.Degree(3), 1u);
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  Graph a = ErdosRenyi(100, 300, 42);
  Graph b = ErdosRenyi(100, 300, 42);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.neighbors(), b.neighbors());
  Graph c = ErdosRenyi(100, 300, 43);
  EXPECT_NE(a.neighbors(), c.neighbors());
}

TEST(GeneratorsTest, ErdosRenyiApproximateEdgeCount) {
  Graph g = ErdosRenyi(1000, 5000, 1);
  // Collisions/self-loops remove a few edges, never add any.
  EXPECT_LE(g.NumEdges(), 5000u);
  EXPECT_GT(g.NumEdges(), 4800u);
}

TEST(GeneratorsTest, RMatIsSkewed) {
  Graph g = RMat(10, 8000, 0.6, 0.15, 0.15, 7);
  // A heavy-tailed graph: max degree much larger than average.
  const double avg = 2.0 * static_cast<double>(g.NumEdges()) /
                     static_cast<double>(g.NumVertices());
  EXPECT_GT(g.MaxDegree(), 4 * avg);
}

TEST(GeneratorsTest, BipartiteHasNoOddCycles) {
  Graph g = BipartitePowerLaw(50, 60, 400, 3);
  // All edges cross the (0..49 | 50..109) cut.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    for (VertexId w : g.Neighbors(v)) {
      EXPECT_NE(v < 50, w < 50) << v << "-" << w;
    }
  }
}

TEST(GeneratorsTest, BarabasiAlbertHeavyTail) {
  Graph g = BarabasiAlbert(2000, 4, 13);
  EXPECT_EQ(g.NumVertices(), 2000u);
  const double avg = 2.0 * static_cast<double>(g.NumEdges()) /
                     static_cast<double>(g.NumVertices());
  // Preferential attachment grows hubs far beyond the average degree.
  EXPECT_GT(g.MaxDegree(), 8 * avg);
  // Every non-seed vertex attached at least once.
  for (VertexId v = 5; v < g.NumVertices(); ++v) {
    EXPECT_GE(g.Degree(v), 1u) << v;
  }
}

TEST(GeneratorsTest, BarabasiAlbertDeterministic) {
  Graph a = BarabasiAlbert(500, 3, 21);
  Graph b = BarabasiAlbert(500, 3, 21);
  EXPECT_EQ(a.neighbors(), b.neighbors());
}

TEST(GeneratorsTest, WattsStrogatzLatticeAtBetaZero) {
  Graph g = WattsStrogatz(100, 4, 0.0, 1);
  // Pure ring lattice: every vertex keeps exactly k neighbors.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    EXPECT_EQ(g.Degree(v), 4u) << v;
  }
  // Ring lattices with k=4 are full of triangles.
  std::uint64_t closed = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    auto adj = g.Neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      for (std::size_t j = i + 1; j < adj.size(); ++j) {
        if (g.HasEdge(adj[i], adj[j])) ++closed;
      }
    }
  }
  EXPECT_GT(closed, 0u);
}

TEST(GeneratorsTest, WattsStrogatzRewiringReducesClustering) {
  auto clustering = [](const Graph& g) {
    double wedges = 0;
    double closed = 0;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      auto adj = g.Neighbors(v);
      for (std::size_t i = 0; i < adj.size(); ++i) {
        for (std::size_t j = i + 1; j < adj.size(); ++j) {
          wedges += 1;
          if (g.HasEdge(adj[i], adj[j])) closed += 1;
        }
      }
    }
    return wedges > 0 ? closed / wedges : 0.0;
  };
  const double ordered = clustering(WattsStrogatz(400, 6, 0.0, 2));
  const double random = clustering(WattsStrogatz(400, 6, 1.0, 2));
  EXPECT_GT(ordered, 0.4);          // lattice: C = 0.6 for k=6
  EXPECT_LT(random, ordered / 2);   // rewiring destroys clustering
}

TEST(DatasetsTest, RegistryShapes) {
  for (DatasetKey key : AllDatasets()) {
    Graph g = MakeDataset(key, /*scale=*/0.05);
    EXPECT_GT(g.NumVertices(), 0u) << DatasetCode(key);
    EXPECT_GT(g.NumEdges(), 0u) << DatasetCode(key);
  }
}

TEST(DatasetsTest, WikipediaIsBipartite) {
  Graph g = MakeDataset(DatasetKey::kWikipedia, 0.1);
  // 2-color via BFS; bipartite stand-in must admit a proper 2-coloring.
  std::vector<int> color(g.NumVertices(), -1);
  for (VertexId s = 0; s < g.NumVertices(); ++s) {
    if (color[s] != -1 || g.Degree(s) == 0) continue;
    color[s] = 0;
    std::vector<VertexId> queue = {s};
    while (!queue.empty()) {
      VertexId v = queue.back();
      queue.pop_back();
      for (VertexId w : g.Neighbors(v)) {
        if (color[w] == -1) {
          color[w] = 1 - color[v];
          queue.push_back(w);
        } else {
          ASSERT_NE(color[w], color[v]);
        }
      }
    }
  }
}

TEST(DatasetsTest, FriendsterSamplesGrowWithPercent) {
  Graph s20 = MakeFriendsterSample(20, 0.1);
  Graph s60 = MakeFriendsterSample(60, 0.1);
  Graph s100 = MakeFriendsterSample(100, 0.1);
  EXPECT_LT(s20.NumVertices(), s60.NumVertices());
  EXPECT_LT(s60.NumVertices(), s100.NumVertices());
  EXPECT_LT(s20.NumEdges(), s60.NumEdges());
}

}  // namespace
}  // namespace dualsim
