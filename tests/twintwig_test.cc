#include "baseline/twintwig.h"

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "graph/generators.h"
#include "query/queries.h"

namespace dualsim {
namespace {

TEST(TwinTwigDecompositionTest, CoversAllEdgesExactlyOnce) {
  for (PaperQuery pq : AllPaperQueries()) {
    QueryGraph q = MakePaperQuery(pq);
    auto twigs = DecomposeTwinTwigs(q);
    int covered = 0;
    std::set<std::pair<QueryVertex, QueryVertex>> seen;
    for (const TwinTwig& t : twigs) {
      EXPECT_GE(t.num_leaves, 1);
      EXPECT_LE(t.num_leaves, 2);
      for (std::uint8_t j = 0; j < t.num_leaves; ++j) {
        QueryVertex a = t.center;
        QueryVertex b = t.leaves[j];
        EXPECT_TRUE(q.HasEdge(a, b)) << PaperQueryName(pq);
        if (a > b) std::swap(a, b);
        EXPECT_TRUE(seen.emplace(a, b).second)
            << "edge covered twice in " << PaperQueryName(pq);
        ++covered;
      }
    }
    EXPECT_EQ(covered, q.NumEdges()) << PaperQueryName(pq);
  }
}

TEST(TwinTwigDecompositionTest, TriangleNeedsTwoTwigs) {
  auto twigs = DecomposeTwinTwigs(MakeCliqueQuery(3));
  EXPECT_EQ(twigs.size(), 2u);  // a 2-edge twig + a 1-edge twig
}

TEST(TwinTwigJoinTest, FinalCountMatchesOracle) {
  Graph g = ErdosRenyi(120, 500, 19);
  for (PaperQuery pq : AllPaperQueries()) {
    QueryGraph q = MakePaperQuery(pq);
    auto result = RunTwinTwigJoin(g, q);
    ASSERT_TRUE(result.ok()) << PaperQueryName(pq);
    ASSERT_FALSE(result->failed) << result->failure_reason;
    EXPECT_EQ(result->final_results, CountOccurrences(g, q))
        << PaperQueryName(pq);
  }
}

TEST(TwinTwigJoinTest, IntermediateResultsExplodeOnSparseCycles) {
  // The motivating observation: on sparse graphs, cyclic queries force TTJ
  // to materialize far more partial tuples (open 2-paths) than there are
  // final results (closed squares).
  Graph g = ErdosRenyi(600, 1800, 3);
  auto square = RunTwinTwigJoin(g, MakePaperQuery(PaperQuery::kQ2));
  ASSERT_TRUE(square.ok());
  ASSERT_FALSE(square->failed);
  EXPECT_GT(square->intermediate_results, 10u * square->final_results);
  EXPECT_GT(square->intermediate_results, g.NumEdges());
}

TEST(TwinTwigJoinTest, FailBudgetTrips) {
  Graph g = RMat(9, 2500, 0.57, 0.19, 0.19, 3);
  TwinTwigOptions options;
  options.fail_budget_tuples = 100;  // absurdly small
  auto result = RunTwinTwigJoin(g, MakePaperQuery(PaperQuery::kQ2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->failed);
  EXPECT_NE(result->failure_reason.find("spill failure"), std::string::npos);
}

TEST(TwinTwigJoinTest, SpillAccounting) {
  Graph g = ErdosRenyi(200, 1200, 23);
  TwinTwigOptions options;
  options.memory_budget_tuples = 10;  // force spilling
  auto result = RunTwinTwigJoin(g, MakePaperQuery(PaperQuery::kQ1), options);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->failed);
  EXPECT_GT(result->spilled_tuples, 0u);
  EXPECT_GT(result->elapsed_seconds, result->cpu_seconds);
}

TEST(TwinTwigJoinTest, RejectsDisconnectedQuery) {
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  EXPECT_FALSE(RunTwinTwigJoin(ErdosRenyi(10, 20, 1), q).ok());
}

TEST(TwinTwigJoinTest, TriangleFreeGraphZeroResults) {
  auto result = RunTwinTwigJoin(Cycle(20), MakeCliqueQuery(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->final_results, 0u);
}

}  // namespace
}  // namespace dualsim
