/// Worker-failure suite for the coordinator (DESIGN.md §13): a worker
/// SIGKILLed mid-dispatch must produce a *typed* degraded answer — a
/// PARTIAL_RESULT frame plus a RESULT carrying kPartialResult whose count
/// covers exactly the surviving partitions — or, with a retry budget, a
/// respawned worker and the full count. A hung worker must never turn
/// drain or a deadline into a hang: the coordinator's watchdog cancels,
/// then severs the connection after the abort grace. Every scenario here
/// is wall-clock bounded; a hang is itself the failure.

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "baseline/bruteforce.h"
#include "distsim/partitioner.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/parser.h"
#include "query/symmetry_breaking.h"
#include "service/client.h"
#include "service/protocol.h"
#include "testkit/coord_fixture.h"
#include "testkit/metrics_util.h"

namespace dualsim::coord {
namespace {

using service::WireCode;
using testkit::CoordHarness;
using testkit::MetricsProbe;

/// q1 (triangle) golden over ReorderByDegree(ErdosRenyi(200, 1000, 42)).
constexpr std::uint64_t kGoldenQ1 = 151;

Graph FixtureGraph() { return ReorderByDegree(ErdosRenyi(200, 1000, 42)); }

/// How many q1 embeddings the merge can still cover when `dead_part` is
/// lost: those owned by any surviving partition.
std::uint64_t SurvivingOwnerCount(const Graph& g, int num_parts,
                                  int dead_part) {
  auto q = ParseQuery("q1");
  EXPECT_TRUE(q.ok());
  std::uint64_t survivors = 0;
  EnumerateBruteForce(g, *q, FindPartialOrders(*q), [&](const Embedding& m) {
    if (EmbeddingOwner({m.data(), m.size()}, num_parts, /*seed=*/0) !=
        dead_part) {
      ++survivors;
    }
  });
  return survivors;
}

/// SIGKILLs `pid` and waits for the kernel to tear the process down (its
/// listen socket with it), so the dispatch that follows the seam sees a
/// dead endpoint, not a half-alive race.
void KillWorker(pid_t pid) {
  ASSERT_GT(pid, 0);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  // The coordinator owns the reaping (waitpid in its respawn path); here
  // just give the kernel a beat to close the sockets.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

TEST(CoordFailureTest, KilledWorkerYieldsTypedPartialResult) {
  const Graph g = FixtureGraph();
  constexpr int kParts = 3;
  constexpr int kDeadPart = 1;

  CoordHarness harness;
  std::atomic<bool> killed{false};
  Status s = harness.Start(g, kParts, [&](CoordinatorOptions& opt) {
    opt.max_retries = 0;  // first failure is final: partial, not retry
    opt.on_dispatch = [&](int part, int attempt) {
      if (part == kDeadPart && attempt == 0 &&
          !killed.exchange(true)) {
        KillWorker(harness.coordinator().workers()[kDeadPart].pid);
      }
    };
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  MetricsProbe probe;
  auto client = harness.Connect();
  const auto start = std::chrono::steady_clock::now();
  auto result = client->Run({.query = "q1", .deadline_ms = 30'000});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Typed, never a hang: kPartialResult well before the deadline.
  EXPECT_EQ(result->code, WireCode::kPartialResult) << result->message;
  EXPECT_LT(elapsed, std::chrono::seconds(25));
  ASSERT_TRUE(result->partial.has_value());
  EXPECT_EQ(result->partial->total_parts, static_cast<std::uint32_t>(kParts));
  ASSERT_EQ(result->partial->failed_parts.size(), 1u);
  EXPECT_EQ(result->partial->failed_parts[0],
            static_cast<std::uint32_t>(kDeadPart));
  EXPECT_FALSE(result->partial->message.empty());

  // The degraded count is exactly the surviving owners' share — an
  // honest partial, not a silently wrong total.
  const std::uint64_t survivors = SurvivingOwnerCount(g, kParts, kDeadPart);
  EXPECT_EQ(result->embeddings, survivors);
  EXPECT_EQ(result->partial->merged_embeddings, survivors);
  EXPECT_LT(survivors, kGoldenQ1);  // the lost part owned something

  testkit::ExpectMetricDelta(probe, "coord.partial_results", 1);
  testkit::ExpectMetricDelta(probe, "coord.worker_failures", 1);

  // The failed dispatch respawned the worker even though the retry budget
  // was exhausted for *this* request — the next request heals to the full
  // golden count.
  std::uint64_t full = 0;
  for (int i = 0; i < 50; ++i) {
    auto again = harness.Connect()->Run({.query = "q1"});
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    if (again->code == WireCode::kOk) {
      full = again->embeddings;
      break;
    }
    // Respawn may still be in flight; a partial here is acceptable.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_EQ(full, kGoldenQ1);
}

TEST(CoordFailureTest, RetryRespawnsWorkerAndRecoversFullCount) {
  const Graph g = FixtureGraph();
  constexpr int kParts = 2;
  constexpr int kDeadPart = 1;

  CoordHarness harness;
  std::atomic<bool> killed{false};
  Status s = harness.Start(g, kParts, [&](CoordinatorOptions& opt) {
    opt.max_retries = 2;
    opt.on_dispatch = [&](int part, int attempt) {
      if (part == kDeadPart && attempt == 0 &&
          !killed.exchange(true)) {
        KillWorker(harness.coordinator().workers()[kDeadPart].pid);
      }
    };
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  MetricsProbe probe;
  auto client = harness.Connect();
  auto result = client->Run({.query = "q1", .deadline_ms = 30'000});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The retry hit a freshly respawned worker: full count, no partial.
  EXPECT_EQ(result->code, WireCode::kOk) << result->message;
  EXPECT_EQ(result->embeddings, kGoldenQ1);
  EXPECT_FALSE(result->partial.has_value());
  EXPECT_TRUE(killed.load());

  if (obs::kMetricsEnabled) {
    EXPECT_GE(probe.Delta("coord.worker_retries"), 1u);
    EXPECT_GE(probe.Delta("coord.worker_respawns"), 1u);
    EXPECT_EQ(probe.Delta("coord.worker_failures"), 0u);
    EXPECT_EQ(probe.Delta("coord.partial_results"), 0u);
  }
}

TEST(CoordFailureTest, DrainWithHungWorkerIsBounded) {
  const Graph g = FixtureGraph();
  CoordHarness harness;
  Status s = harness.Start(g, 2, [&](CoordinatorOptions& opt) {
    // Every worker stalls each request 60s — far past every timeout here;
    // only the watchdog's cancel->abort ladder can end the request.
    opt.worker_args = {"--test-stall-ms", "60000"};
    opt.drain_timeout_ms = 200;
    opt.abort_grace_ms = 200;
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto submitter = harness.Connect();
  ASSERT_TRUE(submitter->Submit({.query = "q1"}).ok());

  // Await on a side thread; the drain must force its RESULT out.
  StatusOr<service::ClientResult> hung_result =
      Status::IOError("await never returned");
  std::thread awaiter(
      [&] { hung_result = submitter->Await(); });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto controller = harness.Connect();
  const auto start = std::chrono::steady_clock::now();
  Status drained = controller->Shutdown();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  awaiter.join();

  EXPECT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  ASSERT_TRUE(hung_result.ok()) << hung_result.status().ToString();
  EXPECT_EQ(hung_result->code, WireCode::kShuttingDown)
      << hung_result->message;
  EXPECT_TRUE(harness.coordinator().WaitForShutdown(/*timeout_ms=*/5000));
}

TEST(CoordFailureTest, DeadlineEnforcedPastHungWorker) {
  const Graph g = FixtureGraph();
  CoordHarness harness;
  Status s = harness.Start(g, 2, [&](CoordinatorOptions& opt) {
    opt.worker_args = {"--test-stall-ms", "60000"};
    opt.abort_grace_ms = 200;
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  MetricsProbe probe;
  auto client = harness.Connect();
  const auto start = std::chrono::steady_clock::now();
  auto result = client->Run({.query = "q1", .deadline_ms = 300});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // "Never a hang past the deadline": the watchdog cancelled, then cut
  // the worker connections after the grace — well inside the 60s stall.
  EXPECT_EQ(result->code, WireCode::kDeadlineExceeded) << result->message;
  EXPECT_GE(elapsed, std::chrono::milliseconds(300));
  EXPECT_LT(elapsed, std::chrono::seconds(20));
  testkit::ExpectMetricDelta(probe, "coord.requests_deadline_expired", 1);
}

TEST(CoordFailureTest, ClientCancelFansOutToWorkers) {
  const Graph g = FixtureGraph();
  CoordHarness harness;
  Status s = harness.Start(g, 2, [&](CoordinatorOptions& opt) {
    opt.worker_args = {"--test-stall-ms", "60000"};
    opt.abort_grace_ms = 200;
  });
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto client = harness.Connect();
  ASSERT_TRUE(client->Submit({.query = "q1"}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(client->Cancel().ok());

  const auto start = std::chrono::steady_clock::now();
  auto result = client->Await();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, WireCode::kCancelled) << result->message;
  EXPECT_LT(elapsed, std::chrono::seconds(20));
}

}  // namespace
}  // namespace dualsim::coord
