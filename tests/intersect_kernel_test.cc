/// Differential kernel-test harness for the tiered intersection family
/// (DESIGN.md §11). Every kernel variant — galloping, AVX2 block-compare,
/// bitmap-block — is run against the scalar merge oracle (itself checked
/// against std::set_intersection) over adversarial shapes: empty and
/// singleton lists, every SIMD tail length n in {0..33}, extreme 1:10^6
/// size ratios, dense vs sparse universes, block-aligned all-equal and
/// all-disjoint runs. A seeded property-fuzz lane (DUALSIM_FUZZ_SEED /
/// DUALSIM_FUZZ_ITERS) sweeps random shapes, the forced-kernel ×
/// DUALSIM_FAKE_NO_AVX2 matrix pins the fallback ladder, and the paper's
/// q1–q5 golden counts are re-verified end-to-end under each forced
/// kernel.

#include "core/intersect.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"
#include "storage/disk_graph.h"
#include "testkit/fuzz_util.h"
#include "testkit/metrics_util.h"
#include "util/random.h"

namespace dualsim {
namespace {

using intersect_internal::Avx2CompiledIn;
using intersect_internal::ChooseKernel;
using intersect_internal::kGallopRatio;
using intersect_internal::ResetConfigForTesting;
using testkit::ExpectMetricDelta;
using testkit::FuzzConfig;
using testkit::FuzzConfigFromEnv;
using testkit::MetricsProbe;
using testkit::ReproHint;

/// Sets (or clears, with nullptr) one env var and re-resolves the cached
/// intersect configuration; restores a clean slate on destruction.
class ScopedIntersectEnv {
 public:
  ScopedIntersectEnv(const char* name, const char* value) : name_(name) {
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
    ResetConfigForTesting();
  }
  ~ScopedIntersectEnv() {
    ::unsetenv(name_);
    ResetConfigForTesting();
  }

 private:
  const char* name_;
};

/// Restores the process kernel to kAuto even when a test fails mid-way.
class ScopedKernel {
 public:
  explicit ScopedKernel(IntersectKernel k) {
    EXPECT_TRUE(SetIntersectKernel(k).ok());
  }
  ~ScopedKernel() { (void)SetIntersectKernel(IntersectKernel::kAuto); }
};

const std::vector<IntersectKernel>& ConcreteKernels() {
  static const std::vector<IntersectKernel> kernels = {
      IntersectKernel::kScalar, IntersectKernel::kGalloping,
      IntersectKernel::kAvx2, IntersectKernel::kBitmap};
  return kernels;
}

bool KernelRunnable(IntersectKernel k) {
  return k != IntersectKernel::kAvx2 || Avx2Available();
}

std::vector<VertexId> SetOracle(const std::vector<VertexId>& a,
                                const std::vector<VertexId>& b) {
  std::vector<VertexId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<VertexId> SortedUnique(Random& rng, std::size_t n,
                                   std::uint64_t universe) {
  std::set<VertexId> s;
  while (s.size() < n) {
    s.insert(static_cast<VertexId>(rng.Uniform(universe)));
    if (universe < n) break;  // cannot reach n distinct values
  }
  return {s.begin(), s.end()};
}

/// The core differential assertion: every runnable kernel must produce
/// exactly the scalar oracle's output (which in turn equals
/// std::set_intersection), in both argument orders, and the output must
/// be sorted strictly ascending (duplicate-free invariant).
void ExpectAllKernelsMatchOracle(const std::vector<VertexId>& a,
                                 const std::vector<VertexId>& b,
                                 const std::string& context) {
  const std::vector<VertexId> want = SetOracle(a, b);
  std::vector<VertexId> scalar;
  Intersect2With(IntersectKernel::kScalar, a, b, &scalar);
  ASSERT_EQ(scalar, want) << "scalar oracle diverged from "
                             "std::set_intersection: "
                          << context;
  EXPECT_TRUE(std::is_sorted(scalar.begin(), scalar.end()));
  EXPECT_EQ(std::adjacent_find(scalar.begin(), scalar.end()), scalar.end())
      << "duplicate in output: " << context;
  for (IntersectKernel k : ConcreteKernels()) {
    if (!KernelRunnable(k)) continue;
    std::vector<VertexId> out;
    Intersect2With(k, a, b, &out);
    EXPECT_EQ(out, want) << IntersectKernelName(k) << " (a, b): " << context;
    Intersect2With(k, b, a, &out);
    EXPECT_EQ(out, want) << IntersectKernelName(k) << " (b, a): " << context;
  }
}

TEST(IntersectKernelTest, AdversarialShapes) {
  struct Shape {
    const char* name;
    std::vector<VertexId> a;
    std::vector<VertexId> b;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"both empty", {}, {}});
  shapes.push_back({"empty vs singleton", {}, {5}});
  shapes.push_back({"singleton hit", {7}, {7}});
  shapes.push_back({"singleton miss", {7}, {8}});
  shapes.push_back({"singleton vs long",
                    {513},
                    [] {
                      std::vector<VertexId> v;
                      for (VertexId i = 0; i < 1024; ++i) v.push_back(i);
                      return v;
                    }()});
  // Identical lists; fully interleaved disjoint lists (evens vs odds) —
  // the all-match and no-match extremes for the block comparator.
  {
    std::vector<VertexId> evens;
    std::vector<VertexId> odds;
    for (VertexId i = 0; i < 64; ++i) {
      evens.push_back(2 * i);
      odds.push_back(2 * i + 1);
    }
    shapes.push_back({"identical", evens, evens});
    shapes.push_back({"interleaved disjoint", evens, odds});
  }
  // Block-aligned runs: 8 equal, 8 disjoint, 8 equal ... exercises the
  // advance-both and advance-one paths of the SIMD loop.
  {
    std::vector<VertexId> a;
    std::vector<VertexId> b;
    for (VertexId blk = 0; blk < 6; ++blk) {
      for (VertexId i = 0; i < 8; ++i) {
        const VertexId base = blk * 100;
        if (blk % 2 == 0) {
          a.push_back(base + i);
          b.push_back(base + i);
        } else {
          a.push_back(base + 2 * i);
          b.push_back(base + 2 * i + 1);
        }
      }
    }
    shapes.push_back({"block-aligned runs", a, b});
  }
  // Dense vs sparse universes at equal sizes.
  {
    Random rng(11);
    shapes.push_back({"dense universe", SortedUnique(rng, 200, 256),
                      SortedUnique(rng, 200, 256)});
    shapes.push_back({"sparse universe",
                      SortedUnique(rng, 200, std::uint64_t{1} << 30),
                      SortedUnique(rng, 200, std::uint64_t{1} << 30)});
  }
  for (const Shape& s : shapes) {
    ExpectAllKernelsMatchOracle(s.a, s.b, s.name);
  }
}

/// Every SIMD tail combination: lengths 0..33 on both sides cover "below
/// one block", "exactly blocks", and "blocks plus ragged tail" for the
/// 8-lane AVX2 kernel (and the galloping/bitmap small-input paths).
TEST(IntersectKernelTest, SimdTailLengthMatrix) {
  Random rng(23);
  for (std::size_t na = 0; na <= 33; ++na) {
    for (std::size_t nb : {na, std::size_t{8}, std::size_t{33}}) {
      const auto a = SortedUnique(rng, na, 64);
      const auto b = SortedUnique(rng, nb, 64);
      ExpectAllKernelsMatchOracle(
          a, b, "tail " + std::to_string(na) + "x" + std::to_string(nb));
    }
  }
}

/// Extreme size skew (1:10^6): a four-element list against a million-long
/// one. The galloping tier exists for exactly this shape.
TEST(IntersectKernelTest, ExtremeSizeRatioOneToMillion) {
  std::vector<VertexId> big;
  big.reserve(1'000'000);
  for (VertexId v = 0; v < 2'000'000; v += 2) big.push_back(v);
  const std::vector<VertexId> small = {1, 1'000'000, 1'999'998, 3'999'999};
  ASSERT_GE(big.size() / small.size(), 250'000u);
  ExpectAllKernelsMatchOracle(small, big, "1:10^6 skew");
  // And the dispatcher must route it to galloping.
  EXPECT_EQ(ChooseKernel(small, big), IntersectKernel::kGalloping);
}

TEST(IntersectKernelTest, SeededPropertyFuzz) {
  const FuzzConfig cfg = FuzzConfigFromEnv(0xD0A1, 60);
  Random rng(cfg.seed * 6364136223846793005ULL + 1);
  for (int iter = 0; iter < cfg.iters; ++iter) {
    // Log-uniform sizes so small and large lists are equally likely, and
    // a universe that flips between dense and sparse.
    const std::size_t na = rng.Uniform(std::uint64_t{1} << rng.Uniform(13));
    const std::size_t nb = rng.Uniform(std::uint64_t{1} << rng.Uniform(13));
    const std::uint64_t universe =
        rng.Bernoulli(0.5) ? (na + nb + 1) * 2 : (std::uint64_t{1} << 28);
    const auto a = SortedUnique(rng, na, universe);
    const auto b = SortedUnique(rng, nb, universe);
    ExpectAllKernelsMatchOracle(
        a, b, "fuzz iter " + std::to_string(iter) + "\n" + ReproHint(cfg.seed));
  }
}

/// Pin the dispatch policy (DESIGN.md §11): heavy skew gallops, balanced
/// dense inputs use the best available block kernel, balanced sparse
/// inputs fall to scalar.
TEST(IntersectKernelTest, DispatcherThresholds) {
  Random rng(31);
  const auto small = SortedUnique(rng, 8, 1u << 20);
  const auto huge = SortedUnique(rng, 8 * kGallopRatio, 1u << 20);
  EXPECT_EQ(ChooseKernel(small, huge), IntersectKernel::kGalloping);
  EXPECT_EQ(ChooseKernel(huge, small), IntersectKernel::kGalloping);

  const auto dense_a = SortedUnique(rng, 128, 300);
  const auto dense_b = SortedUnique(rng, 128, 300);
  const auto sparse_a = SortedUnique(rng, 128, std::uint64_t{1} << 30);
  const auto sparse_b = SortedUnique(rng, 128, std::uint64_t{1} << 30);
  if (Avx2Available()) {
    EXPECT_EQ(ChooseKernel(dense_a, dense_b), IntersectKernel::kAvx2);
    EXPECT_EQ(ChooseKernel(sparse_a, sparse_b), IntersectKernel::kAvx2);
  }
  {
    ScopedIntersectEnv fake("DUALSIM_FAKE_NO_AVX2", "1");
    EXPECT_EQ(ChooseKernel(dense_a, dense_b), IntersectKernel::kBitmap);
    EXPECT_EQ(ChooseKernel(sparse_a, sparse_b), IntersectKernel::kScalar);
    // Skew still wins over density.
    EXPECT_EQ(ChooseKernel(small, huge), IntersectKernel::kGalloping);
  }
}

/// Forced-kernel matrix via the env var: the configured kernel resolves
/// from DUALSIM_FORCE_INTERSECT_KERNEL and the per-kernel call counter
/// proves the forced kernel actually ran.
TEST(IntersectKernelTest, ForcedKernelEnvMatrix) {
  Random rng(37);
  const auto a = SortedUnique(rng, 100, 400);
  const auto b = SortedUnique(rng, 100, 400);
  const auto want = SetOracle(a, b);
  for (IntersectKernel k : ConcreteKernels()) {
    if (!KernelRunnable(k)) continue;
    ScopedIntersectEnv force("DUALSIM_FORCE_INTERSECT_KERNEL",
                             IntersectKernelName(k));
    EXPECT_EQ(ConfiguredIntersectKernel(), k);
    MetricsProbe probe;
    std::vector<VertexId> out;
    Intersect2(a, b, &out);
    EXPECT_EQ(out, want) << IntersectKernelName(k);
    ExpectMetricDelta(probe, "intersect.calls", 1);
    ExpectMetricDelta(
        probe, std::string("intersect.") + IntersectKernelName(k) + ".calls",
        1);
  }
  {
    ScopedIntersectEnv typo("DUALSIM_FORCE_INTERSECT_KERNEL", "sse9");
    auto kernel = DefaultIntersectKernel();
    EXPECT_FALSE(kernel.ok());
  }
}

/// The AVX2 leg of the fallback ladder, faked off: availability goes
/// false with a reason, auto dispatch stops choosing AVX2, an explicit
/// force fails typed instead of silently running another kernel — and
/// results stay correct throughout.
TEST(IntersectKernelTest, FakeNoAvx2FallbackLadder) {
  ScopedIntersectEnv fake("DUALSIM_FAKE_NO_AVX2", "1");
  EXPECT_FALSE(Avx2Available());
  EXPECT_NE(Avx2UnavailableReason(), "");

  EXPECT_FALSE(SetIntersectKernel(IntersectKernel::kAvx2).ok());
  (void)SetIntersectKernel(IntersectKernel::kAuto);
  {
    ScopedIntersectEnv force("DUALSIM_FORCE_INTERSECT_KERNEL", "avx2");
    auto kernel = DefaultIntersectKernel();
    EXPECT_FALSE(kernel.ok());
  }

  Random rng(41);
  const auto a = SortedUnique(rng, 256, 600);
  const auto b = SortedUnique(rng, 256, 600);
  MetricsProbe probe;
  std::vector<VertexId> out;
  Intersect2(a, b, &out);
  EXPECT_EQ(out, SetOracle(a, b));
  ExpectMetricDelta(probe, "intersect.avx2.calls", 0);
}

/// Satellite fix: the m-way result vector is reserved once from the
/// smallest input size and never grows past it — no reallocation while
/// results accumulate.
TEST(IntersectKernelTest, IntersectManyReservesFromSmallestInput) {
  std::vector<VertexId> big1;
  std::vector<VertexId> big2;
  for (VertexId v = 0; v < 4000; ++v) {
    if (v % 2 == 0) big1.push_back(v);
    if (v % 3 == 0) big2.push_back(v);
  }
  const std::vector<VertexId> tiny = {0, 6, 12, 1998, 3996};
  const std::span<const VertexId> lists[] = {big1, tiny, big2};

  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{0, 6, 12, 1998, 3996}));
  // A single up-front reservation from the smallest list: capacity never
  // grows past it (libstdc++ reserves exactly what is asked).
  EXPECT_GE(out.capacity(), out.size());
  EXPECT_LE(out.capacity(), tiny.size());

  // A pre-reserved result vector must not reallocate at all.
  std::vector<VertexId> reused;
  reused.reserve(tiny.size());
  const VertexId* data_before = reused.data();
  const std::size_t cap_before = reused.capacity();
  IntersectMany(lists, &reused);
  EXPECT_EQ(reused.data(), data_before) << "IntersectMany reallocated";
  EXPECT_EQ(reused.capacity(), cap_before);
  EXPECT_EQ(reused, out);
}

/// m-way intersection against a std::set oracle, per forced kernel.
TEST(IntersectKernelTest, ManyWayDifferentialAcrossKernels) {
  Random rng(47);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t num_lists = 2 + trial % 4;
    std::vector<std::vector<VertexId>> lists(num_lists);
    std::vector<std::set<VertexId>> sets(num_lists);
    for (std::size_t i = 0; i < num_lists; ++i) {
      const std::size_t n = rng.Uniform(120);
      for (std::size_t j = 0; j < n; ++j) {
        sets[i].insert(static_cast<VertexId>(rng.Uniform(150)));
      }
      lists[i].assign(sets[i].begin(), sets[i].end());
    }
    std::set<VertexId> expected = sets[0];
    for (std::size_t i = 1; i < num_lists; ++i) {
      std::set<VertexId> next;
      std::set_intersection(expected.begin(), expected.end(), sets[i].begin(),
                            sets[i].end(), std::inserter(next, next.end()));
      expected = next;
    }
    const std::vector<VertexId> want(expected.begin(), expected.end());
    std::vector<std::span<const VertexId>> spans(lists.begin(), lists.end());
    for (IntersectKernel k : ConcreteKernels()) {
      if (!KernelRunnable(k)) continue;
      std::vector<VertexId> out;
      IntersectManyWith(k, spans, &out);
      EXPECT_EQ(out, want) << IntersectKernelName(k) << " trial " << trial;
    }
  }
}

/// Input-size and selectivity histograms reach the registry.
TEST(IntersectKernelTest, MetricsHistogramsRecorded) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Random rng(53);
  const auto a = SortedUnique(rng, 16, 64);
  const auto b = SortedUnique(rng, 64, 128);
  const auto before = obs::Metrics().Snapshot();
  std::vector<VertexId> out;
  Intersect2(a, b, &out);
  const auto after = obs::Metrics().Snapshot();
  EXPECT_EQ(after.histogram("intersect.smaller_size").count,
            before.histogram("intersect.smaller_size").count + 1);
  EXPECT_EQ(after.histogram("intersect.larger_size").count,
            before.histogram("intersect.larger_size").count + 1);
  EXPECT_EQ(after.histogram("intersect.selectivity_pct").count,
            before.histogram("intersect.selectivity_pct").count + 1);
}

/// AVX2 build/CPU/fake ladder is internally consistent.
TEST(IntersectKernelTest, AvailabilityLadderConsistency) {
  if (Avx2Available()) {
    EXPECT_TRUE(Avx2CompiledIn());
    EXPECT_EQ(Avx2UnavailableReason(), "");
  } else {
    EXPECT_NE(Avx2UnavailableReason(), "");
  }
  // Parse/name round-trip over the whole family.
  for (IntersectKernel k :
       {IntersectKernel::kAuto, IntersectKernel::kScalar,
        IntersectKernel::kGalloping, IntersectKernel::kAvx2,
        IntersectKernel::kBitmap}) {
    auto parsed = ParseIntersectKernel(IntersectKernelName(k));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(ParseIntersectKernel("neon").ok());
}

/// End-to-end: the paper's q1–q5 pinned golden counts over the ER fixture
/// graph are identical under every forced kernel, and the freshly built
/// database passes the load-time adjacency verification the kernels
/// depend on (sorted, duplicate-free, degree-ordered).
TEST(IntersectKernelTest, GoldenCountsUnderEachForcedKernel) {
  // Same fixture and literals as golden_counts_test's ER row.
  constexpr std::uint64_t kGoldenEr[5] = {151, 1076, 90, 0, 2024};
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 42));

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("dualsim_kernel_golden_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "g.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, /*page_size=*/512).ok());
  auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  bool degree_ordered = false;
  Status verify = (*disk)->VerifyAdjacency(&degree_ordered);
  EXPECT_TRUE(verify.ok()) << verify.ToString();
  EXPECT_TRUE(degree_ordered);

  for (IntersectKernel k : ConcreteKernels()) {
    if (!KernelRunnable(k)) continue;
    ScopedKernel guard(k);
    EngineOptions options;
    options.buffer_fraction = 0.2;
    options.num_threads = 2;
    DualSimEngine engine(disk->get(), options);
    int qi = 0;
    for (PaperQuery pq : AllPaperQueries()) {
      auto result = engine.Run(MakePaperQuery(pq));
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->embeddings, kGoldenEr[qi])
          << PaperQueryName(pq) << " under kernel " << IntersectKernelName(k);
      ++qi;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dualsim
