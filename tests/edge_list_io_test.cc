#include "graph/edge_list_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "graph/generators.h"

namespace dualsim {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(EdgeListIoTest, TextRoundTrip) {
  Graph g = ErdosRenyi(60, 150, 9);
  const std::string path = PathFor("g.txt");
  ASSERT_TRUE(WriteEdgeListText(g, path).ok());
  auto back = ReadEdgeListText(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->NumVertices(), g.NumVertices());
  EXPECT_EQ(back->NumEdges(), g.NumEdges());
  EXPECT_EQ(back->neighbors(), g.neighbors());
}

TEST_F(EdgeListIoTest, BinaryRoundTrip) {
  Graph g = RMat(7, 300, 0.55, 0.15, 0.15, 4);
  const std::string path = PathFor("g.bin");
  ASSERT_TRUE(WriteEdgeListBinary(g, path).ok());
  auto back = ReadEdgeListBinary(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->neighbors(), g.neighbors());
  EXPECT_EQ(back->offsets(), g.offsets());
}

TEST_F(EdgeListIoTest, TextIgnoresCommentsAndBlanks) {
  const std::string path = PathFor("hand.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("# header\n\n0 1\n1 2\n# trailing\n2 0\n", f);
  std::fclose(f);
  auto g = ReadEdgeListText(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST_F(EdgeListIoTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadEdgeListText(PathFor("absent.txt")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ReadEdgeListBinary(PathFor("absent.bin")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(EdgeListIoTest, BadMagicRejected) {
  const std::string path = PathFor("junk.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  const char junk[64] = "this is not a dualsim binary edge list oh no...";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_EQ(ReadEdgeListBinary(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EdgeListIoTest, MalformedTextLineRejected) {
  const std::string path = PathFor("bad.txt");
  std::FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("0 1\nnot numbers\n", f);
  std::fclose(f);
  EXPECT_EQ(ReadEdgeListText(path).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dualsim
