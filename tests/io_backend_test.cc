#include "storage/io_backend.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <latch>
#include <unistd.h>
#include <vector>

#include "obs/metrics.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "util/thread_pool.h"

namespace dualsim {
namespace {

constexpr std::size_t kPage = 256;
constexpr PageId kPages = 64;

/// Scoped setenv/unsetenv so fallback-ladder tests cannot leak state.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

class IoBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto file = PageFile::Create((dir_ / "io.pages").string(), kPage);
    ASSERT_TRUE(file.ok());
    file_ = std::move(*file);
    std::vector<std::byte> page(kPage);
    for (PageId pid = 0; pid < kPages; ++pid) {
      std::memset(page.data(), static_cast<int>(pid % 251 + 1), kPage);
      ASSERT_TRUE(file_->WritePage(pid, page.data()).ok());
    }
    io_ = std::make_unique<ThreadPool>(2);
    if (GetParam() == "uring" && !UringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable: " << UringUnavailableReason();
    }
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<IoBackend> MakeBackend(std::size_t queue_depth = 8) {
    auto kind = ParseIoBackendKind(GetParam());
    EXPECT_TRUE(kind.ok());
    IoBackendOptions options;
    options.queue_depth = queue_depth;
    auto backend = CreateIoBackend(*kind, file_.get(), io_.get(), options);
    EXPECT_TRUE(backend.ok()) << backend.status().ToString();
    return std::move(*backend);
  }

  static int Expected(PageId pid) { return static_cast<int>(pid % 251 + 1); }

  std::filesystem::path dir_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<ThreadPool> io_;
};

TEST_P(IoBackendTest, SynchronousReadPage) {
  auto backend = MakeBackend();
  EXPECT_EQ(std::string(backend->name()), GetParam());
  std::vector<std::byte> buf(kPage);
  ASSERT_TRUE(backend->ReadPage(5, buf.data()).ok());
  EXPECT_EQ(static_cast<int>(buf[0]), Expected(5));
  EXPECT_EQ(static_cast<int>(buf[kPage - 1]), Expected(5));
}

TEST_P(IoBackendTest, BatchedSubmitCompletesEveryRequestWithItsOwnBuffer) {
  auto backend = MakeBackend();
  // One distinct destination per request: a backend that crosses wires
  // (wrong completion for a slot) corrupts a specific buffer.
  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(kPage));
  std::latch done(kPages);
  std::atomic<int> failures{0};
  std::vector<IoReadRequest> batch;
  for (PageId pid = 0; pid < kPages; ++pid) {
    IoReadRequest req;
    req.pid = pid;
    req.dst = bufs[pid].data();
    req.done = [&, pid](Status s) {
      if (!s.ok()) failures.fetch_add(1);
      done.count_down();
    };
    batch.push_back(std::move(req));
  }
  backend->SubmitReads(std::move(batch));
  done.wait();
  EXPECT_EQ(failures.load(), 0);
  for (PageId pid = 0; pid < kPages; ++pid) {
    EXPECT_EQ(static_cast<int>(bufs[pid][0]), Expected(pid)) << pid;
    EXPECT_EQ(static_cast<int>(bufs[pid][kPage - 1]), Expected(pid)) << pid;
  }
}

TEST_P(IoBackendTest, QueueDepthSaturationParksOverflow) {
  // Far more in-flight reads than the submission queue holds: the backend
  // must park overflow in userspace and complete everything (never block
  // the submitter, never drop a request).
  auto backend = MakeBackend(/*queue_depth=*/2);
  constexpr int kRounds = 8;
  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(kPage));
  std::latch done(kPages * kRounds);
  std::atomic<int> failures{0};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<IoReadRequest> batch;
    for (PageId pid = 0; pid < kPages; ++pid) {
      IoReadRequest req;
      req.pid = pid;
      req.dst = bufs[pid].data();
      req.done = [&](Status s) {
        if (!s.ok()) failures.fetch_add(1);
        done.count_down();
      };
      batch.push_back(std::move(req));
    }
    backend->SubmitReads(std::move(batch));
  }
  done.wait();
  EXPECT_EQ(failures.load(), 0);
  backend->Drain();
}

TEST_P(IoBackendTest, DrainOnDestructionRunsEveryCompletion) {
  std::atomic<int> completions{0};
  // bufs outlives the backend: the destructor's drain guarantee is what
  // makes the in-flight writes into them safe.
  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(kPage));
  {
    auto backend = MakeBackend();
    std::vector<IoReadRequest> batch;
    for (PageId pid = 0; pid < kPages; ++pid) {
      IoReadRequest req;
      req.pid = pid;
      req.dst = bufs[pid].data();
      req.done = [&](Status) { completions.fetch_add(1); };
      batch.push_back(std::move(req));
    }
    backend->SubmitReads(std::move(batch));
    // No Drain(): the destructor itself must not return before every
    // in-flight completion ran.
  }
  EXPECT_EQ(completions.load(), static_cast<int>(kPages));
}

TEST_P(IoBackendTest, OutOfBoundsReadFailsInline) {
  auto backend = MakeBackend();
  std::vector<std::byte> buf(kPage);
  EXPECT_EQ(backend->ReadPage(kPages + 7, buf.data()).code(),
            StatusCode::kInvalidArgument);
  std::latch done(1);
  Status async;
  IoReadRequest req;
  req.pid = kPages + 7;
  req.dst = buf.data();
  req.done = [&](Status s) {
    async = std::move(s);
    done.count_down();
  };
  backend->SubmitRead(std::move(req));
  done.wait();
  EXPECT_EQ(async.code(), StatusCode::kInvalidArgument);
}

TEST_P(IoBackendTest, MetricsCountSubmissions) {
  obs::Metrics().ResetAll();
  auto backend = MakeBackend();
  std::vector<std::vector<std::byte>> bufs(2, std::vector<std::byte>(kPage));
  std::latch done(2);
  std::vector<IoReadRequest> batch;
  for (PageId pid : {PageId{1}, PageId{2}}) {
    IoReadRequest req;
    req.pid = pid;
    req.dst = bufs[pid - 1].data();
    req.done = [&](Status) { done.count_down(); };
    batch.push_back(std::move(req));
  }
  backend->SubmitReads(std::move(batch));
  done.wait();
  backend->Drain();
  const obs::MetricsSnapshot snap = obs::Metrics().Snapshot();
#ifndef DUALSIM_NO_METRICS
  const std::string prefix = "io." + GetParam() + ".";
  EXPECT_EQ(snap.counter(prefix + "reads_submitted"), 2u);
  EXPECT_EQ(snap.counter(prefix + "reads_completed"), 2u);
  EXPECT_EQ(snap.counter(prefix + "batches"), 1u);
  EXPECT_EQ(snap.counter(prefix + "reads_batched"), 2u);
  // The backend label names the backend serving the process.
  EXPECT_EQ(snap.label("io.backend"), GetParam());
#else
  (void)snap;
#endif
}

TEST_P(IoBackendTest, FaultInjectionInterceptsSubmittedReads) {
  // The fault seam must fire on the batched path of every backend: an
  // injected permanent error surfaces through done(status) while the
  // rest of the window completes normally.
  auto injector = std::make_shared<FaultInjector>();
  injector->FailReadForever(3);
  file_->SetFaultInjector(injector);
  auto backend = MakeBackend();

  std::vector<std::vector<std::byte>> bufs(kPages,
                                           std::vector<std::byte>(kPage));
  std::latch done(kPages);
  std::atomic<int> failed_pid{-1};
  std::atomic<int> failures{0};
  std::vector<IoReadRequest> batch;
  for (PageId pid = 0; pid < kPages; ++pid) {
    IoReadRequest req;
    req.pid = pid;
    req.dst = bufs[pid].data();
    req.done = [&, pid](Status s) {
      if (!s.ok()) {
        failures.fetch_add(1);
        failed_pid.store(static_cast<int>(pid));
      }
      done.count_down();
    };
    batch.push_back(std::move(req));
  }
  backend->SubmitReads(std::move(batch));
  done.wait();
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(failed_pid.load(), 3);
  for (PageId pid = 0; pid < kPages; ++pid) {
    if (pid == 3) continue;
    EXPECT_EQ(static_cast<int>(bufs[pid][0]), Expected(pid)) << pid;
    EXPECT_EQ(static_cast<int>(bufs[pid][kPage - 1]), Expected(pid)) << pid;
  }
  EXPECT_GE(injector->stats().read_faults, 1u);
  file_->SetFaultInjector(nullptr);
}

INSTANTIATE_TEST_SUITE_P(Backends, IoBackendTest,
                         ::testing::Values("threadpool", "uring"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Backend selection and the fallback ladder (backend-independent).

TEST(IoBackendKindTest, ParseAcceptsKnownNamesOnly) {
  EXPECT_TRUE(ParseIoBackendKind("auto").ok());
  EXPECT_TRUE(ParseIoBackendKind("threadpool").ok());
  EXPECT_TRUE(ParseIoBackendKind("uring").ok());
  EXPECT_EQ(ParseIoBackendKind("io_uring").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseIoBackendKind("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IoBackendKindTest, KindNamesRoundTrip) {
  for (IoBackendKind kind :
       {IoBackendKind::kAuto, IoBackendKind::kThreadPool,
        IoBackendKind::kUring}) {
    auto parsed = ParseIoBackendKind(IoBackendKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(IoBackendKindTest, ResolveCollapsesAutoToConcrete) {
  const IoBackendKind resolved = ResolveIoBackendKind(IoBackendKind::kAuto);
  EXPECT_NE(resolved, IoBackendKind::kAuto);
  EXPECT_EQ(ResolveIoBackendKind(IoBackendKind::kThreadPool),
            IoBackendKind::kThreadPool);
  EXPECT_EQ(ResolveIoBackendKind(IoBackendKind::kUring),
            IoBackendKind::kUring);
}

TEST(IoBackendKindTest, DefaultHonoursEnvAndRejectsTypos) {
  {
    ScopedEnv env("DUALSIM_IO_BACKEND", "threadpool");
    auto kind = DefaultIoBackendKind();
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, IoBackendKind::kThreadPool);
  }
  {
    ScopedEnv env("DUALSIM_IO_BACKEND", "not-a-backend");
    EXPECT_EQ(DefaultIoBackendKind().status().code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(IoBackendFallbackTest, FakeNoUringDisablesProbe) {
  ScopedEnv env("DUALSIM_FAKE_NO_URING", "1");
  std::string reason;
  EXPECT_FALSE(io_internal::UringSupported(&reason));
  EXPECT_FALSE(reason.empty());
}

TEST(IoBackendFallbackTest, ExplicitUringUnavailableIsTypedError) {
  ScopedEnv env("DUALSIM_FAKE_NO_URING", "1");
  auto dir = std::filesystem::temp_directory_path() /
             ("dualsim_io_fb_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto file = PageFile::Create((dir / "fb.pages").string(), kPage);
  ASSERT_TRUE(file.ok());
  // CreateUringIoBackend probes uncached, so the fake env var is honoured
  // even after other tests populated the process-wide cache.
  auto backend = CreateUringIoBackend(file->get());
  EXPECT_FALSE(backend.ok());
  EXPECT_EQ(backend.status().code(), StatusCode::kUnimplemented);
  // The factory ladder: explicit uring fails, auto falls back.
  ThreadPool pool(1);
  auto explicit_uring =
      CreateIoBackend(IoBackendKind::kUring, file->get(), &pool);
  EXPECT_FALSE(explicit_uring.ok());
  file->reset();
  std::filesystem::remove_all(dir);
}

TEST(IoBackendFallbackTest, PreadFullReportsShortReads) {
  auto dir = std::filesystem::temp_directory_path() /
             ("dualsim_io_pf_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto file = PageFile::Create((dir / "pf.pages").string(), kPage);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> page(kPage, std::byte{0x5a});
  ASSERT_TRUE((*file)->WritePage(0, page.data()).ok());
  std::vector<std::byte> buf(kPage);
  // In-bounds read succeeds...
  EXPECT_TRUE(io_internal::PreadFull((*file)->fd(), "pf.pages", buf.data(),
                                     kPage, 0)
                  .ok());
  EXPECT_EQ(buf[0], std::byte{0x5a});
  // ...a read past EOF hits the short-read guard instead of looping.
  EXPECT_EQ(io_internal::PreadFull((*file)->fd(), "pf.pages", buf.data(),
                                   kPage, kPage * 100)
                .code(),
            StatusCode::kIOError);
  file->reset();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dualsim
