#include "baseline/chiba_nishizeki.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/bruteforce.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"

namespace dualsim {
namespace {

TEST(ChibaNishizekiTest, TrianglesMatchOracle) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    Graph g = ReorderByDegree(RMat(8, 900, 0.58, 0.15, 0.15, seed));
    EXPECT_EQ(ChibaNishizekiTriangles(g),
              CountOccurrences(g, MakeCliqueQuery(3)))
        << seed;
  }
}

TEST(ChibaNishizekiTest, FourCliquesMatchOracle) {
  for (std::uint64_t seed : {4u, 5u}) {
    Graph g = ReorderByDegree(RMat(7, 700, 0.58, 0.15, 0.15, seed));
    EXPECT_EQ(ChibaNishizekiFourCliques(g),
              CountOccurrences(g, MakeCliqueQuery(4)))
        << seed;
  }
}

TEST(ChibaNishizekiTest, CompleteGraphClosedForms) {
  Graph k8 = Complete(8);
  EXPECT_EQ(ChibaNishizekiTriangles(k8), 56u);    // C(8,3)
  EXPECT_EQ(ChibaNishizekiFourCliques(k8), 70u);  // C(8,4)
}

TEST(ChibaNishizekiTest, TriangleFreeGraphs) {
  EXPECT_EQ(ChibaNishizekiTriangles(Cycle(20)), 0u);
  EXPECT_EQ(ChibaNishizekiTriangles(BipartitePowerLaw(30, 30, 200, 9)), 0u);
  EXPECT_EQ(ChibaNishizekiFourCliques(Cycle(20)), 0u);
}

TEST(ChibaNishizekiTest, VisitorEmitsSortedDistinctTriples) {
  Graph g = ReorderByDegree(ErdosRenyi(60, 250, 7));
  std::set<Embedding> seen;
  const std::uint64_t count =
      ChibaNishizekiTriangles(g, [&](const Embedding& m) {
        EXPECT_LT(m[0], m[1]);
        EXPECT_LT(m[1], m[2]);
        EXPECT_TRUE(g.HasEdge(m[0], m[1]));
        EXPECT_TRUE(g.HasEdge(m[1], m[2]));
        EXPECT_TRUE(g.HasEdge(m[0], m[2]));
        EXPECT_TRUE(seen.insert(m).second) << "duplicate triangle";
      });
  EXPECT_EQ(count, seen.size());
}

}  // namespace
}  // namespace dualsim
