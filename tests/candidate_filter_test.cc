/// Candidate filtering (DESIGN.md §12): label-constrained root levels
/// intersect the catalog's label index with their candidate pages before
/// windows form. These tests pin the observable contract:
///   - a selective labeled query skips pages (candidate.pages_skipped > 0)
///     and filters child candidates (candidate.vertices_filtered),
///   - filtering never changes counts (it is an optimization; the
///     per-vertex label checks are the correctness layer),
///   - turning the filter off stops the page skipping.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/parser.h"
#include "storage/disk_graph.h"
#include "testkit/metrics_util.h"

namespace dualsim {
namespace {

class CandidateFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_candfilter_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    // Skewed labels: label 0 dominates, label 3 is rare — so a query
    // pinned to label 3 touches few pages. Small pages force many pages.
    g_ = WithRandomLabels(ReorderByDegree(ErdosRenyi(400, 2400, 97)),
                          /*num_labels=*/4, /*seed=*/51, /*skew=*/1.6);
    path_ = (dir_ / "g.db").string();
    ASSERT_TRUE(BuildDiskGraph(g_, path_, /*page_size=*/512).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  Graph g_;
  std::string path_;
};

TEST_F(CandidateFilterTest, SelectiveQuerySkipsPagesAndMatchesOracle) {
  auto disk = DiskGraph::Open(path_, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  // A triangle (red cover of size 2, so the v-group forest has a child
  // level) pinned entirely to the rare label: the root level skips pages
  // and the child level drops label-mismatched adjacency entries.
  auto q = ParseQuery("0-1,1-2,2-0,0=3,1=3,2=3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // The rare label must genuinely be page-selective in this fixture,
  // otherwise the assertion below tests nothing.
  ASSERT_LT((*disk)->PagesWithLabel(3).Count(), (*disk)->num_pages());

  testkit::MetricsProbe probe;
  EngineOptions options;
  options.buffer_fraction = 0.3;
  DualSimEngine engine(disk->get(), options);
  auto result = engine.Run(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g_, *q));
  if (obs::kMetricsEnabled) {
    EXPECT_GT(probe.Delta("candidate.pages_skipped"), 0u)
        << "a rare-label root must skip label-free pages";
    EXPECT_GT(probe.Delta("candidate.vertices_filtered"), 0u)
        << "child candidates failing the level label must be dropped";
  }
}

TEST_F(CandidateFilterTest, FilterOffKeepsCountsButSkipsNothing) {
  auto disk = DiskGraph::Open(path_, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  auto q = ParseQuery("0-1,1-2,0=3,1=3,2=3");
  ASSERT_TRUE(q.ok());

  testkit::MetricsProbe probe;
  EngineOptions options;
  options.buffer_fraction = 0.3;
  options.candidate_filter = false;
  DualSimEngine engine(disk->get(), options);
  auto result = engine.Run(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Correctness is unchanged: the per-vertex label checks still apply.
  EXPECT_EQ(result->embeddings, CountOccurrences(g_, *q));
  testkit::ExpectMetricDelta(probe, "candidate.pages_skipped", 0);
  testkit::ExpectMetricDelta(probe, "candidate.vertices_filtered", 0);
}

TEST_F(CandidateFilterTest, FilteringReducesPagesRead) {
  auto q = ParseQuery("0-1,1-2,2-0,0=3,1=3,2=3");  // rare-label triangle
  ASSERT_TRUE(q.ok());
  std::uint64_t reads_on = 0;
  std::uint64_t reads_off = 0;
  for (bool filter : {true, false}) {
    auto disk = DiskGraph::Open(path_, false);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    EngineOptions options;
    // A tight buffer so both configurations actually fault pages in
    // (with a huge buffer everything is read exactly once either way).
    options.buffer_fraction = 0.25;
    options.candidate_filter = filter;
    DualSimEngine engine(disk->get(), options);
    auto result = engine.Run(*q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    (filter ? reads_on : reads_off) = result->io.physical_reads;
  }
  EXPECT_LE(reads_on, reads_off)
      << "page filtering must never read more than the unfiltered run";
  EXPECT_LT(reads_on, reads_off)
      << "a rare-label query must read strictly fewer pages with the "
         "filter on";
}

TEST_F(CandidateFilterTest, UnlabeledQueryIsUnaffectedByTheFilter) {
  auto disk = DiskGraph::Open(path_, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  auto q = ParseQuery("triangle");
  ASSERT_TRUE(q.ok());
  testkit::MetricsProbe probe;
  DualSimEngine engine(disk->get());
  auto result = engine.Run(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g_, *q));
  testkit::ExpectMetricDelta(probe, "candidate.pages_skipped", 0);
  testkit::ExpectMetricDelta(probe, "candidate.vertices_filtered", 0);
}

}  // namespace
}  // namespace dualsim
