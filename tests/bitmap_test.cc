#include "util/bitmap.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace dualsim {
namespace {

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_TRUE(b.Empty());
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, SetAllRespectsSize) {
  Bitmap b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  b.ClearAll();
  EXPECT_TRUE(b.Empty());
}

TEST(BitmapTest, UnionIntersect) {
  Bitmap a(100);
  Bitmap b(100);
  a.Set(3);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  Bitmap u = a;
  u.Union(b);
  EXPECT_EQ(u.Count(), 3u);
  Bitmap i = a;
  i.Intersect(b);
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(50));
}

TEST(BitmapTest, FindNextWalksSetBits) {
  Bitmap b(200);
  b.Set(5);
  b.Set(64);
  b.Set(199);
  EXPECT_EQ(b.FindNext(0), 5u);
  EXPECT_EQ(b.FindNext(5), 5u);
  EXPECT_EQ(b.FindNext(6), 64u);
  EXPECT_EQ(b.FindNext(65), 199u);
  EXPECT_EQ(b.FindNext(200), 200u);  // past the end
}

TEST(BitmapTest, FindNextOnEmpty) {
  Bitmap b(77);
  EXPECT_EQ(b.FindNext(0), 77u);
}

TEST(BitmapTest, ForEachVisitsAscending) {
  Bitmap b(150);
  std::set<std::size_t> want = {0, 1, 63, 64, 65, 149};
  for (std::size_t i : want) b.Set(i);
  std::vector<std::size_t> got;
  b.ForEach([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, std::vector<std::size_t>(want.begin(), want.end()));
}

TEST(BitmapTest, RandomizedAgainstStdSet) {
  Random rng(7);
  Bitmap b(1000);
  std::set<std::size_t> model;
  for (int i = 0; i < 2000; ++i) {
    const std::size_t x = rng.Uniform(1000);
    if (rng.Bernoulli(0.5)) {
      b.Set(x);
      model.insert(x);
    } else {
      b.Clear(x);
      model.erase(x);
    }
  }
  EXPECT_EQ(b.Count(), model.size());
  for (std::size_t x = 0; x < 1000; ++x) {
    EXPECT_EQ(b.Test(x), model.count(x) > 0) << x;
  }
  // FindNext agrees with the model's lower_bound.
  for (std::size_t from = 0; from < 1000; from += 13) {
    auto it = model.lower_bound(from);
    const std::size_t want = it == model.end() ? 1000 : *it;
    EXPECT_EQ(b.FindNext(from), want);
  }
}

TEST(BitmapTest, ResizeClearsContents) {
  Bitmap b(10);
  b.Set(3);
  b.Resize(20);
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.size(), 20u);
}

}  // namespace
}  // namespace dualsim
