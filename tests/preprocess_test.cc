#include "storage/preprocess.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/reorder.h"

namespace dualsim {
namespace {

TEST(PreprocessTest, ExternalReorderMatchesInMemoryReorder) {
  Graph g = RMat(8, 800, 0.6, 0.15, 0.15, 21);
  Graph want = ReorderByDegree(g);
  auto result = ExternalReorder(g, /*memory_budget_bytes=*/256);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->reordered.offsets(), want.offsets());
  EXPECT_EQ(result->reordered.neighbors(), want.neighbors());
  // The tiny budget must have spilled runs.
  EXPECT_GT(result->sort_stats.runs, 1u);
  EXPECT_EQ(result->sort_stats.records, 2 * g.NumEdges());
}

TEST(PreprocessTest, ExternalReorderLargeBudgetNoSpill) {
  Graph g = ErdosRenyi(100, 300, 17);
  auto result = ExternalReorder(g, 64 << 20);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sort_stats.runs, 0u);
  EXPECT_TRUE(IsDegreeOrdered(result->reordered));
}

TEST(PreprocessTest, PartiallySortedKeepsGraphIntact) {
  Graph g = ErdosRenyi(300, 1200, 5);
  Graph partial = PartiallySortedGraph(g, 0.95, 77);
  EXPECT_EQ(partial.NumVertices(), g.NumVertices());
  EXPECT_EQ(partial.NumEdges(), g.NumEdges());
  // 95% sorted is *not* fully degree-ordered (with high probability the 5%
  // appended tail breaks it).
  EXPECT_FALSE(IsDegreeOrdered(partial));
}

TEST(PreprocessTest, PartiallySortedFullFractionIsOrdered) {
  Graph g = ErdosRenyi(200, 800, 9);
  Graph sorted = PartiallySortedGraph(g, 1.0, 3);
  EXPECT_TRUE(IsDegreeOrdered(sorted));
}

}  // namespace
}  // namespace dualsim
