/// Loopback integration suite for continuous queries (SUBSCRIBE / UPDATE
/// / UNSUBSCRIBE): initial counts against the pinned golden values, the
/// pushed-diff oracle (delta chains must equal the from-scratch delta of
/// the composed view), base-snapshot semantics for one-shot SUBMITs
/// under churn, the subscription cap and invalid-query rejections,
/// drain/unsubscribe terminal accounting, and a concurrent
/// subscriber/updater/query soak (the TSan lane's target).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baseline/bruteforce.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "incr/edge_delta_log.h"
#include "query/parser.h"
#include "runtime/runtime.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/query_service.h"
#include "storage/disk_graph.h"

namespace dualsim::service {
namespace {

/// Pinned golden counts for q1..q5 over ReorderByDegree(ErdosRenyi(200,
/// 1000, 42)) — same fixture row as service_test.cc.
constexpr std::uint64_t kGoldenTriangles = 151;

class IncrServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_incr_service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    graph_ = ReorderByDegree(ErdosRenyi(200, 1000, 42));
    const std::string path = (dir_ / "g.db").string();
    ASSERT_TRUE(BuildDiskGraph(graph_, path, /*page_size=*/512).ok());
    auto disk = OpenServedGraph(path);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    disk_ = std::move(*disk);
  }

  void TearDown() override {
    service_.reset();
    runtime_.reset();
    disk_.reset();
    std::filesystem::remove_all(dir_);
  }

  void StartService(ServiceOptions sopt = {}) {
    if (sopt.session_max_frames == 0) sopt.session_max_frames = 20;
    RuntimeOptions ropt;
    ropt.num_frames = 64;
    ropt.num_threads = 4;
    ropt.io_threads = 2;
    runtime_ = std::make_unique<Runtime>(disk_.get(), ropt);
    service_ = std::make_unique<QueryService>(runtime_.get(), sopt);
    Status s = service_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<QueryClient> Connect() {
    auto client = std::make_unique<QueryClient>();
    Status s = client->Connect("127.0.0.1", service_->port());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return client;
  }

  /// First `count` absent pairs whose endpoints share a neighbor, so
  /// adding any of them closes at least one new triangle.
  std::vector<std::pair<VertexId, VertexId>> TriangleClosingNonEdges(
      std::size_t count) {
    std::vector<std::pair<VertexId, VertexId>> out;
    std::set<std::pair<VertexId, VertexId>> seen;
    for (VertexId u = 0; u < graph_.NumVertices() && out.size() < count; ++u) {
      const auto adj = graph_.Neighbors(u);
      for (std::size_t i = 0; i < adj.size() && out.size() < count; ++i) {
        for (std::size_t j = i + 1; j < adj.size() && out.size() < count;
             ++j) {
          VertexId a = adj[i], b = adj[j];
          if (a > b) std::swap(a, b);
          const auto adj_a = graph_.Neighbors(a);
          if (std::binary_search(adj_a.begin(), adj_a.end(), b)) continue;
          if (!seen.insert({a, b}).second) continue;
          out.emplace_back(a, b);
        }
      }
    }
    return out;
  }

  /// First `count` vertex pairs absent from `graph_` (deterministic, all
  /// guaranteed presence flips when added exactly once).
  std::vector<std::pair<VertexId, VertexId>> NonEdges(std::size_t count) {
    std::vector<std::pair<VertexId, VertexId>> out;
    for (VertexId u = 0; u < graph_.NumVertices() && out.size() < count; ++u) {
      const auto adj = graph_.Neighbors(u);
      for (VertexId v = u + 1;
           v < graph_.NumVertices() && out.size() < count; ++v) {
        if (!std::binary_search(adj.begin(), adj.end(), v)) {
          out.emplace_back(u, v);
        }
      }
    }
    return out;
  }

  /// In-memory copy of `graph_` with extra undirected edges, for oracle
  /// counts of the composed view.
  Graph GraphPlus(const std::vector<std::pair<VertexId, VertexId>>& extra) {
    std::vector<std::set<VertexId>> adj(graph_.NumVertices());
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      const auto n = graph_.Neighbors(v);
      adj[v] = {n.begin(), n.end()};
    }
    for (const auto& [u, v] : extra) {
      adj[u].insert(v);
      adj[v].insert(u);
    }
    std::vector<EdgeId> offsets(adj.size() + 1, 0);
    std::vector<VertexId> neighbors;
    for (VertexId v = 0; v < adj.size(); ++v) {
      neighbors.insert(neighbors.end(), adj[v].begin(), adj[v].end());
      offsets[v + 1] = static_cast<EdgeId>(neighbors.size());
    }
    return Graph(std::move(offsets), std::move(neighbors));
  }

  std::filesystem::path dir_;
  Graph graph_;
  std::unique_ptr<DiskGraph> disk_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(IncrServiceTest, SubscribeStreamsInitialAndUnsubscribes) {
  StartService();
  auto client = Connect();

  std::vector<Embedding> streamed;
  auto sub = client->Subscribe("triangle", /*initial_embeddings=*/true,
                               [&](const std::vector<VertexId>& m) {
                                 streamed.push_back(m);
                               });
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub->initial_count, kGoldenTriangles);
  EXPECT_EQ(sub->streamed_embeddings, kGoldenTriangles);
  EXPECT_EQ(streamed.size(), kGoldenTriangles);

  auto info = client->GetStatus();
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->subscriptions_active, 1u);
  EXPECT_EQ(info->admitted, 1u);

  auto diffs = client->Unsubscribe(sub->subscription_id);
  ASSERT_TRUE(diffs.ok()) << diffs.status().ToString();
  EXPECT_EQ(*diffs, 0u);  // no updates happened

  info = client->GetStatus();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->subscriptions_active, 0u);
  EXPECT_EQ(info->completed, 1u);
}

TEST_F(IncrServiceTest, UpdatePushesFromScratchDeltaToSubscriber) {
  StartService();
  auto subscriber = Connect();
  auto updater = Connect();

  auto sub = subscriber->Subscribe("triangle");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  std::uint64_t live = sub->initial_count;
  ASSERT_EQ(live, kGoldenTriangles);

  // Two batches: first adds edges closing new triangles, second removes
  // one of them again. Oracle counts come from in-memory copies.
  const auto non_edges = TriangleClosingNonEdges(3);
  ASSERT_EQ(non_edges.size(), 3u);
  std::vector<incr::EdgeDelta> batch1;
  for (const auto& [u, v] : non_edges) {
    batch1.push_back({incr::DeltaOp::kAddEdge, u, v});
  }
  const std::uint64_t after1 =
      CountOccurrences(GraphPlus(non_edges), *ParseQuery("triangle"));

  auto ack1 = updater->Update(batch1);
  ASSERT_TRUE(ack1.ok()) << ack1.status().ToString();
  EXPECT_EQ(ack1->applied, 3u);
  EXPECT_EQ(ack1->ignored, 0u);
  EXPECT_EQ(ack1->subscriptions_notified, 1u);
  EXPECT_GT(ack1->dirty_pages, 0u);

  auto event1 = subscriber->NextEvent();
  ASSERT_TRUE(event1.ok()) << event1.status().ToString();
  EXPECT_FALSE(event1->ended);
  EXPECT_EQ(event1->subscription_id, sub->subscription_id);
  EXPECT_EQ(event1->sequence, ack1->sequence);
  ASSERT_EQ(event1->arity, 3u);
  EXPECT_EQ(event1->added.size() % 3, 0u);
  live += event1->added.size() / 3;
  live -= event1->retracted.size() / 3;
  EXPECT_EQ(live, after1);

  // Remove one added edge: the composed view steps back accordingly.
  std::vector<std::pair<VertexId, VertexId>> remaining(non_edges.begin() + 1,
                                                       non_edges.end());
  const std::uint64_t after2 =
      CountOccurrences(GraphPlus(remaining), *ParseQuery("triangle"));
  auto ack2 = updater->Update(
      {{incr::DeltaOp::kRemoveEdge, non_edges[0].first, non_edges[0].second},
       // A no-op remove of a never-present edge is counted ignored.
       {incr::DeltaOp::kRemoveEdge, non_edges[1].first,
        non_edges[1].second == 199 ? VertexId{198} : VertexId{199}}});
  ASSERT_TRUE(ack2.ok()) << ack2.status().ToString();
  EXPECT_EQ(ack2->sequence, ack1->sequence + 1);
  EXPECT_EQ(ack2->applied, 1u);

  auto event2 = subscriber->NextEvent();
  ASSERT_TRUE(event2.ok()) << event2.status().ToString();
  live += event2->added.size() / 3;
  live -= event2->retracted.size() / 3;
  EXPECT_EQ(live, after2);
  EXPECT_EQ(event2->windows_rerun + event2->windows_skipped,
            ack2->windows_rerun + ack2->windows_skipped);

  // A late subscriber's initial run sees the composed view, not the base.
  auto late = Connect();
  auto late_sub = late->Subscribe("triangle");
  ASSERT_TRUE(late_sub.ok()) << late_sub.status().ToString();
  EXPECT_EQ(late_sub->initial_count, after2);

  auto diffs = subscriber->Unsubscribe(sub->subscription_id);
  ASSERT_TRUE(diffs.ok()) << diffs.status().ToString();
  EXPECT_EQ(*diffs, 2u);
}

TEST_F(IncrServiceTest, OneShotSubmitsKeepBaseSnapshotUnderChurn) {
  StartService();
  auto updater = Connect();
  const auto non_edges = TriangleClosingNonEdges(4);
  std::vector<incr::EdgeDelta> deltas;
  for (const auto& [u, v] : non_edges) {
    deltas.push_back({incr::DeltaOp::kAddEdge, u, v});
  }
  auto ack = updater->Update(deltas);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->applied, 4u);

  // The overlay is dirty, but a one-shot query still reports the base
  // snapshot's golden count: SUBMIT semantics are stable under churn.
  auto oneshot = Connect();
  ClientRequest req;
  req.query = "triangle";
  auto result = oneshot->Run(req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, WireCode::kOk);
  EXPECT_EQ(result->embeddings, kGoldenTriangles);

  // A subscription's initial run sees the composed view instead.
  const std::uint64_t composed =
      CountOccurrences(GraphPlus(non_edges), *ParseQuery("triangle"));
  auto sub = oneshot->Subscribe("triangle");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();
  EXPECT_EQ(sub->initial_count, composed);
  EXPECT_NE(composed, kGoldenTriangles);
}

TEST_F(IncrServiceTest, SubscriptionCapAndInvalidQueriesRejectTyped) {
  ServiceOptions sopt;
  sopt.max_subscriptions = 1;
  StartService(sopt);
  auto client = Connect();

  auto bad = client->Subscribe("nonsense");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto first = client->Subscribe("triangle");
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  auto second = Connect()->Subscribe("edgelike 0-1,1-2");
  EXPECT_EQ(second.status().code(), StatusCode::kInvalidArgument);
  auto capped = Connect()->Subscribe("square");
  EXPECT_EQ(capped.status().code(), StatusCode::kResourceExhausted);

  auto info = client->GetStatus();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->subscriptions_active, 1u);
  EXPECT_EQ(info->rejected_overload, 1u);
  EXPECT_EQ(info->rejected_invalid, 2u);
}

TEST_F(IncrServiceTest, DrainEndsSubscriptionsWithShuttingDown) {
  StartService();
  auto subscriber = Connect();
  auto sub = subscriber->Subscribe("triangle");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  auto admin = Connect();
  std::thread shutdown([&] {
    Status s = admin->Shutdown();
    EXPECT_TRUE(s.ok()) << s.ToString();
  });

  auto event = subscriber->NextEvent();
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_TRUE(event->ended);
  EXPECT_EQ(event->subscription_id, sub->subscription_id);
  EXPECT_EQ(event->end_code, WireCode::kShuttingDown);
  EXPECT_EQ(event->diffs_pushed, 0u);

  shutdown.join();
  ASSERT_TRUE(service_->WaitForShutdown(10'000));
  service_->Stop();
}

TEST_F(IncrServiceTest, ConcurrentSubscribersUpdatersAndQueriesSoak) {
  ServiceOptions sopt;
  sopt.num_workers = 2;
  StartService(sopt);

  constexpr int kUpdaters = 2;
  constexpr int kBatchesPerUpdater = 5;
  constexpr int kEdgesPerBatch = 2;
  constexpr int kSubscribers = 2;
  constexpr int kTotalBatches = kUpdaters * kBatchesPerUpdater;

  // Disjoint per-updater pools of non-edges: every add is a guaranteed
  // presence flip regardless of interleaving, and the final composed
  // view is order-independent.
  const auto pool =
      NonEdges(static_cast<std::size_t>(kUpdaters) * kBatchesPerUpdater *
               kEdgesPerBatch);
  ASSERT_EQ(pool.size(),
            static_cast<std::size_t>(kUpdaters * kBatchesPerUpdater *
                                     kEdgesPerBatch));
  const std::uint64_t final_count =
      CountOccurrences(GraphPlus(pool), *ParseQuery("triangle"));

  // Subscribers register before any update, so each must observe every
  // batch exactly once (an empty diff still arrives as one final chunk).
  struct SubscriberState {
    std::unique_ptr<QueryClient> client;
    std::uint64_t id = 0;
    std::uint64_t live = 0;
  };
  std::vector<SubscriberState> subs(kSubscribers);
  for (auto& s : subs) {
    s.client = Connect();
    auto sub = s.client->Subscribe("triangle");
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    s.id = sub->subscription_id;
    s.live = sub->initial_count;
    ASSERT_EQ(s.live, kGoldenTriangles);
  }

  std::vector<std::thread> threads;
  for (int u = 0; u < kUpdaters; ++u) {
    threads.emplace_back([&, u] {
      auto client = Connect();
      for (int b = 0; b < kBatchesPerUpdater; ++b) {
        std::vector<incr::EdgeDelta> deltas;
        for (int e = 0; e < kEdgesPerBatch; ++e) {
          const auto& [x, y] =
              pool[static_cast<std::size_t>(u) * kBatchesPerUpdater *
                       kEdgesPerBatch +
                   static_cast<std::size_t>(b) * kEdgesPerBatch +
                   static_cast<std::size_t>(e)];
          deltas.push_back({incr::DeltaOp::kAddEdge, x, y});
        }
        auto ack = client->Update(deltas);
        ASSERT_TRUE(ack.ok()) << ack.status().ToString();
        EXPECT_EQ(ack->applied, kEdgesPerBatch);
        EXPECT_EQ(ack->subscriptions_notified, kSubscribers);
      }
    });
  }
  // One-shot queries ride along; their counts never move off the base
  // snapshot.
  threads.emplace_back([&] {
    auto client = Connect();
    for (int i = 0; i < 6; ++i) {
      ClientRequest req;
      req.query = "triangle";
      auto result = client->Run(req);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->code, WireCode::kOk);
      EXPECT_EQ(result->embeddings, kGoldenTriangles);
    }
  });
  // Each subscriber drains exactly kTotalBatches events concurrently
  // with the updates.
  for (auto& s : subs) {
    threads.emplace_back([&] {
      for (int e = 0; e < kTotalBatches; ++e) {
        auto event = s.client->NextEvent();
        ASSERT_TRUE(event.ok()) << event.status().ToString();
        ASSERT_FALSE(event->ended);
        ASSERT_EQ(event->arity, 3u);
        s.live += event->added.size() / 3;
        s.live -= event->retracted.size() / 3;
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every subscriber's incrementally-maintained count landed on the
  // from-scratch count of the final composed view.
  for (auto& s : subs) {
    EXPECT_EQ(s.live, final_count);
    auto diffs = s.client->Unsubscribe(s.id);
    ASSERT_TRUE(diffs.ok()) << diffs.status().ToString();
    EXPECT_EQ(*diffs, static_cast<std::uint64_t>(kTotalBatches));
  }
  // And a fresh subscription's initial run agrees.
  auto fresh = Connect()->Subscribe("triangle");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->initial_count, final_count);

  auto info = subs[0].client->GetStatus();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->updates_received, kTotalBatches);
  EXPECT_GE(info->delta_frames_sent,
            static_cast<std::uint64_t>(kTotalBatches * kSubscribers));
}

}  // namespace
}  // namespace dualsim::service
