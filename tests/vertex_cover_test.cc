#include "query/vertex_cover.h"

#include <gtest/gtest.h>

#include "query/queries.h"

namespace dualsim {
namespace {

int Popcount(std::uint32_t x) { return __builtin_popcount(x); }

TEST(VertexCoverTest, IsVertexCoverBasics) {
  QueryGraph q = MakeCycleQuery(4);
  EXPECT_TRUE(IsVertexCover(q, 0b0101));   // opposite corners 0,2
  EXPECT_TRUE(IsVertexCover(q, 0b1010));   // 1,3
  EXPECT_FALSE(IsVertexCover(q, 0b0011));  // adjacent pair misses edge 2-3
  EXPECT_TRUE(IsVertexCover(q, 0b1111));
}

TEST(VertexCoverTest, SquareMvcIsOppositeCorners) {
  auto mvcs = MinimumVertexCovers(MakeCycleQuery(4));
  ASSERT_EQ(mvcs.size(), 2u);
  for (auto m : mvcs) EXPECT_EQ(Popcount(m), 2);
}

TEST(VertexCoverTest, SquareMcvcIsThreeVertices) {
  // The MVCs {0,2}/{1,3} are disconnected, so the MCVC needs 3 vertices.
  auto mcvcs = MinimumConnectedVertexCovers(MakeCycleQuery(4));
  ASSERT_EQ(mcvcs.size(), 4u);  // any path of 3 consecutive corners
  for (auto m : mcvcs) EXPECT_EQ(Popcount(m), 3);
}

TEST(VertexCoverTest, TriangleCovers) {
  auto mvcs = MinimumVertexCovers(MakeCliqueQuery(3));
  EXPECT_EQ(mvcs.size(), 3u);  // any pair
  auto mcvcs = MinimumConnectedVertexCovers(MakeCliqueQuery(3));
  EXPECT_EQ(mcvcs.size(), 3u);  // pairs are adjacent in a triangle
  for (auto m : mcvcs) EXPECT_EQ(Popcount(m), 2);
}

TEST(VertexCoverTest, PaperFigure2Example) {
  // Figure 2's query: the paper lists MVCs {u1,u4} and {u2,u3} and an MCVC
  // {u1,u2,u3}. Reconstruct a graph consistent with that: vertices 0..3
  // (u1..u4); edges chosen so {0,3} and {1,2} are MVCs and {0,1,2} is a
  // connected 3-cover: 0-1, 0-2, 1-3, 2-3.
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(0, 2);
  q.AddEdge(1, 3);
  q.AddEdge(2, 3);
  auto mvcs = MinimumVertexCovers(q);
  ASSERT_EQ(mvcs.size(), 2u);
  EXPECT_EQ(mvcs[0], 0b0110u);  // {u2,u3}
  EXPECT_EQ(mvcs[1], 0b1001u);  // {u1,u4}
  auto mcvcs = MinimumConnectedVertexCovers(q);
  for (auto m : mcvcs) EXPECT_EQ(Popcount(m), 3);
}

TEST(VertexCoverTest, HouseMcvc) {
  auto mcvcs = MinimumConnectedVertexCovers(MakePaperQuery(PaperQuery::kQ5));
  // {0,2,3} and {1,2,3}.
  ASSERT_EQ(mcvcs.size(), 2u);
  EXPECT_EQ(mcvcs[0], 0b01101u);
  EXPECT_EQ(mcvcs[1], 0b01110u);
}

TEST(VertexCoverTest, StarCenterIsCover) {
  auto mvcs = MinimumVertexCovers(MakeStarQuery(5));
  ASSERT_EQ(mvcs.size(), 1u);
  EXPECT_EQ(mvcs[0], 1u);  // just the center
  auto mcvcs = MinimumConnectedVertexCovers(MakeStarQuery(5));
  ASSERT_EQ(mcvcs.size(), 1u);
  EXPECT_EQ(mcvcs[0], 1u);  // single vertex is trivially connected
}

TEST(VertexCoverTest, K4NeedsThree) {
  auto mcvcs = MinimumConnectedVertexCovers(MakeCliqueQuery(4));
  EXPECT_EQ(mcvcs.size(), 4u);
  for (auto m : mcvcs) EXPECT_EQ(Popcount(m), 3);
}

TEST(VertexCoverTest, EveryMcvcIsACover) {
  for (PaperQuery pq : AllPaperQueries()) {
    QueryGraph q = MakePaperQuery(pq);
    for (auto m : MinimumConnectedVertexCovers(q)) {
      EXPECT_TRUE(IsVertexCover(q, m)) << PaperQueryName(pq);
      EXPECT_TRUE(q.IsConnectedSubset(m)) << PaperQueryName(pq);
    }
  }
}

}  // namespace
}  // namespace dualsim
