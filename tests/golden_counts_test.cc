/// Golden-count regression suite: every paper query (q1..q5) over a fixed
/// set of deterministic generator graphs, with the exact embedding count
/// pinned as a literal. The literals were produced by the brute-force
/// oracle (`CountOccurrences`) and are cross-checked against it here, so a
/// failure distinguishes three situations:
///   - engine != golden, oracle == golden  -> engine regression
///   - engine == golden, oracle != golden  -> oracle or generator drift
///   - both != golden                      -> generator/reorder drift
/// Any intentional change to the generators, the degree reorder, or the
/// paper-query definitions must re-derive these numbers.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "core/intersect.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"
#include "storage/disk_graph.h"

namespace dualsim {
namespace {

struct GoldenCase {
  const char* graph_name;
  int graph_id;
  PaperQuery query;
  std::uint64_t golden;
  /// Which intersection kernel the engine is forced onto for this case
  /// (kAuto = the adaptive dispatcher). Every kernel must reproduce the
  /// same pinned counts — the end-to-end leg of the differential harness
  /// in intersect_kernel_test.cc.
  IntersectKernel kernel;
};

/// The fixture graphs, by id. Deterministic seeds; shapes chosen to cover
/// uniform (ER), skewed hubs (R-MAT), preferential attachment (BA), ring
/// lattice (WS), and the dense extreme (K12).
Graph MakeGoldenGraph(int id) {
  switch (id) {
    case 0:
      return ErdosRenyi(200, 1000, 42);
    case 1:
      return RMat(8, 900, 0.57, 0.15, 0.15, 7);
    case 2:
      return BarabasiAlbert(150, 3, 5);
    case 3:
      return WattsStrogatz(120, 6, 0.1, 9);
    default:
      return Complete(12);
  }
}

// Pinned counts per graph, in q1..q5 order. K12 rows have closed forms:
// q1 = C(12,3) = 220 triangles, q4 = C(12,4) = 495 four-cliques.
constexpr std::uint64_t kGolden[5][5] = {
    /* ER   */ {151, 1076, 90, 0, 2024},
    /* RMat */ {587, 5764, 4997, 313, 124334},
    /* BA   */ {107, 575, 262, 6, 3545},
    /* WS   */ {286, 617, 818, 76, 3506},
    /* K12  */ {220, 1485, 2970, 495, 47520},
};

std::vector<GoldenCase> AllGoldenCases() {
  const char* names[] = {"ER", "RMat", "BA", "WS", "K12"};
  std::vector<GoldenCase> cases;
  for (IntersectKernel kernel :
       {IntersectKernel::kAuto, IntersectKernel::kScalar,
        IntersectKernel::kGalloping, IntersectKernel::kAvx2,
        IntersectKernel::kBitmap}) {
    for (int graph = 0; graph < 5; ++graph) {
      int qi = 0;
      for (PaperQuery pq : AllPaperQueries()) {
        cases.push_back(
            {names[graph], graph, pq, kGolden[graph][qi++], kernel});
      }
    }
  }
  return cases;
}

std::string GoldenName(const ::testing::TestParamInfo<GoldenCase>& info) {
  std::string name = std::string(info.param.graph_name) +
                     PaperQueryName(info.param.query);
  if (info.param.kernel != IntersectKernel::kAuto) {
    name += std::string("_") + IntersectKernelName(info.param.kernel);
  }
  return name;
}

class GoldenCountsTest : public ::testing::TestWithParam<GoldenCase> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_golden_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    (void)SetIntersectKernel(IntersectKernel::kAuto);
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
};

TEST_P(GoldenCountsTest, EngineAndOracleMatchPinnedCount) {
  const GoldenCase& param = GetParam();
  if (param.kernel == IntersectKernel::kAvx2 && !Avx2Available()) {
    GTEST_SKIP() << "avx2 kernel unavailable: " << Avx2UnavailableReason();
  }
  ASSERT_TRUE(SetIntersectKernel(param.kernel).ok());
  Graph g = ReorderByDegree(MakeGoldenGraph(param.graph_id));
  const QueryGraph q = MakePaperQuery(param.query);

  // Oracle first: if this line fails, the generators or the query
  // definitions drifted, not the engine. Kernel-independent, so checked
  // once under the adaptive dispatcher rather than per forced kernel.
  if (param.kernel == IntersectKernel::kAuto) {
    EXPECT_EQ(CountOccurrences(g, q), param.golden)
        << "brute-force oracle disagrees with the pinned golden count";
  }

  const std::string path = (dir_ / "g.db").string();
  Status s = BuildDiskGraph(g, path, /*page_size=*/512);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  EngineOptions options;
  options.buffer_fraction = 0.2;
  options.num_threads = 4;
  DualSimEngine engine(disk->get(), options);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, param.golden)
      << "engine disagrees with the pinned golden count under kernel "
      << IntersectKernelName(param.kernel);
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, GoldenCountsTest,
                         ::testing::ValuesIn(AllGoldenCases()), GoldenName);

}  // namespace
}  // namespace dualsim
