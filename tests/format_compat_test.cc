/// On-disk format compatibility (DESIGN.md §12): the labeled v3 format is
/// additive. Unlabeled graphs must keep writing the byte-exact v2 layout
/// (magic "DSMETA02", no label section) so files written by previous
/// binaries and files written today are interchangeable — and v2 files
/// must keep loading and matching. Labeled graphs write "DSMETA03" with
/// the label array + interval index appended, and Open() validates that
/// index rather than trusting it.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"
#include "storage/disk_graph.h"

namespace dualsim {
namespace {

// Mirrors of the (file-local) magics in storage/disk_graph.cc. If these
// drift, the format changed and this suite must be revisited on purpose.
constexpr std::uint64_t kMagicV2 = 0x44534D4554413032ULL;  // "DSMETA02"
constexpr std::uint64_t kMagicV3 = 0x44534D4554413033ULL;  // "DSMETA03"

// The catalog (and so the magic) lives in the sidecar `<path>.meta` file;
// `<path>` itself holds the raw slotted pages.
std::uint64_t ReadMagic(const std::string& path) {
  std::ifstream in(path + ".meta", std::ios::binary);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return magic;
}

class FormatCompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_compat_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(FormatCompatTest, UnlabeledGraphsKeepTheV2Magic) {
  Graph g = ReorderByDegree(ErdosRenyi(120, 500, 3));
  const std::string path = (dir_ / "v2.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  EXPECT_EQ(ReadMagic(path), kMagicV2)
      << "an unlabeled build must stay bit-compatible with old readers";

  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_FALSE((*disk)->HasLabels());
  EXPECT_EQ((*disk)->NumLabels(), 1u);
  // An unlabeled graph behaves as "every vertex has label 0": both the
  // wildcard and label 0 cover every page, other labels cover none.
  EXPECT_EQ((*disk)->PagesWithLabel(kAnyLabel).Count(), (*disk)->num_pages());
  EXPECT_EQ((*disk)->PagesWithLabel(0).Count(), (*disk)->num_pages());
  EXPECT_EQ((*disk)->PagesWithLabel(1).Count(), 0u);
}

TEST_F(FormatCompatTest, V2FilesStillLoadAndMatchAllPaperQueries) {
  // The exact ER fixture of the golden suite: its q1..q5 counts are
  // pinned there; here the same file must reproduce the oracle counts
  // after a plain v2 round trip.
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 42));
  const std::string path = (dir_ / "golden.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  ASSERT_EQ(ReadMagic(path), kMagicV2);
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  EngineOptions options;
  options.buffer_fraction = 0.2;
  DualSimEngine engine(disk->get(), options);
  for (PaperQuery pq : AllPaperQueries()) {
    const QueryGraph q = MakePaperQuery(pq);
    auto result = engine.Run(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->embeddings, CountOccurrences(g, q))
        << "query " << PaperQueryName(pq);
  }
}

TEST_F(FormatCompatTest, LabeledGraphsRoundTripThroughV3) {
  Graph g = WithRandomLabels(ReorderByDegree(ErdosRenyi(150, 700, 11)),
                             /*num_labels=*/5, /*seed=*/29);
  const std::string path = (dir_ / "v3.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  EXPECT_EQ(ReadMagic(path), kMagicV3);

  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->HasLabels());
  EXPECT_EQ((*disk)->NumLabels(), g.NumLabels());
  ASSERT_EQ((*disk)->num_vertices(), g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ((*disk)->LabelOf(v), g.Label(v)) << "vertex " << v;
  }
  // Page-bitmap sanity: the label bitmaps cover exactly the pages the
  // catalog places each vertex on, and their union is every page.
  Bitmap seen;
  seen.Resize((*disk)->num_pages());
  for (LabelId l = 0; l < (*disk)->NumLabels(); ++l) {
    seen.Union((*disk)->PagesWithLabel(l));
  }
  EXPECT_EQ(seen.Count(), (*disk)->num_pages());
}

TEST_F(FormatCompatTest, CorruptLabelSectionIsRejected) {
  Graph g = WithRandomLabels(ReorderByDegree(ErdosRenyi(100, 400, 13)),
                             /*num_labels=*/3, /*seed=*/41);
  const std::string path = (dir_ / "bad.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());

  // Truncate the catalog inside the label section: Open must fail with a
  // typed error, not load garbage labels.
  const std::string meta = path + ".meta";
  const auto full_size = std::filesystem::file_size(meta);
  std::filesystem::resize_file(meta, full_size - 4);
  auto disk = DiskGraph::Open(path, false);
  EXPECT_FALSE(disk.ok());
}

}  // namespace
}  // namespace dualsim
