#include "query/rbi.h"

#include <gtest/gtest.h>

#include "query/queries.h"
#include "query/symmetry_breaking.h"
#include "query/vertex_cover.h"

namespace dualsim {
namespace {

RbiQueryGraph MakeRbi(const QueryGraph& q) {
  return GenerateRbiQueryGraph(q, FindPartialOrders(q));
}

TEST(RbiTest, TriangleTwoRedOneIvory) {
  RbiQueryGraph rbi = MakeRbi(MakeCliqueQuery(3));
  EXPECT_EQ(rbi.red.size(), 2u);
  int ivory = 0;
  for (auto c : rbi.colors) {
    if (c == VertexColor::kIvory) ++ivory;
  }
  EXPECT_EQ(ivory, 1);  // third vertex adjacent to both reds
  EXPECT_EQ(rbi.red_graph.NumVertices(), 2u);
  EXPECT_EQ(rbi.red_graph.NumEdges(), 1u);
}

TEST(RbiTest, SquareThreeRedOneIvory) {
  RbiQueryGraph rbi = MakeRbi(MakeCycleQuery(4));
  EXPECT_EQ(rbi.red.size(), 3u);
  // The non-red corner has two red neighbors -> ivory.
  for (QueryVertex u = 0; u < 4; ++u) {
    if (!rbi.IsRed(u)) EXPECT_EQ(rbi.colors[u], VertexColor::kIvory);
  }
  // Red graph is a path (2 edges).
  EXPECT_EQ(rbi.red_graph.NumEdges(), 2u);
}

TEST(RbiTest, HouseMatchesPaperFigure1) {
  // The house is Figure 1's query: 3 red vertices whose red graph has two
  // edges, and two ivory vertices each adjacent to two reds.
  RbiQueryGraph rbi = MakeRbi(MakePaperQuery(PaperQuery::kQ5));
  EXPECT_EQ(rbi.red.size(), 3u);
  EXPECT_EQ(rbi.red_graph.NumEdges(), 2u);
  int ivory = 0;
  for (auto c : rbi.colors) {
    if (c == VertexColor::kIvory) ++ivory;
  }
  EXPECT_EQ(ivory, 2);
}

TEST(RbiTest, PathHasBlackVertices) {
  // P4 0-1-2-3: MCVC {1,2}; 0 and 3 are each adjacent to one red -> black.
  RbiQueryGraph rbi = MakeRbi(MakePathQuery(4));
  EXPECT_EQ(rbi.red.size(), 2u);
  int black = 0;
  for (auto c : rbi.colors) {
    if (c == VertexColor::kBlack) ++black;
  }
  EXPECT_EQ(black, 2);
}

TEST(RbiTest, StarSingleRed) {
  RbiQueryGraph rbi = MakeRbi(MakeStarQuery(4));
  EXPECT_EQ(rbi.red.size(), 1u);
  EXPECT_EQ(rbi.red[0], 0u);  // the center
  for (QueryVertex u = 1; u <= 4; ++u) {
    EXPECT_EQ(rbi.colors[u], VertexColor::kBlack);
  }
}

TEST(RbiTest, RedSetIsAlwaysAVertexCover) {
  for (PaperQuery pq : AllPaperQueries()) {
    QueryGraph q = MakePaperQuery(pq);
    RbiQueryGraph rbi = MakeRbi(q);
    std::uint32_t mask = 0;
    for (QueryVertex r : rbi.red) mask |= 1u << r;
    EXPECT_TRUE(IsVertexCover(q, mask)) << PaperQueryName(pq);
    EXPECT_TRUE(q.IsConnectedSubset(mask)) << PaperQueryName(pq);
  }
}

TEST(RbiTest, InternalOrdersAreRedLocal) {
  RbiQueryGraph rbi = MakeRbi(MakeCliqueQuery(4));
  const auto internal = rbi.InternalOrders();
  // 3 red vertices in a clique: all 3 pairwise orders are internal.
  EXPECT_EQ(internal.size(), 3u);
  for (const auto& o : internal) {
    EXPECT_LT(o.first, rbi.red.size());
    EXPECT_LT(o.second, rbi.red.size());
  }
}

TEST(RbiTest, MvcOptionUsesPlainCover) {
  // Square with MVC option: red = 2 opposite corners (disconnected).
  RbiOptions options;
  options.use_connected_cover = false;
  QueryGraph q = MakeCycleQuery(4);
  RbiQueryGraph rbi = GenerateRbiQueryGraph(q, FindPartialOrders(q), options);
  EXPECT_EQ(rbi.red.size(), 2u);
  EXPECT_EQ(rbi.red_graph.NumEdges(), 0u);
  // Both non-red corners see two reds -> ivory.
  for (QueryVertex u = 0; u < 4; ++u) {
    if (!rbi.IsRed(u)) EXPECT_EQ(rbi.colors[u], VertexColor::kIvory);
  }
}

TEST(RbiTest, Rule1PrefersInternalOrders) {
  // Triangle: MCVCs {0,1}, {0,2}, {1,2}; PO is the chain 0<1<2 so every
  // pair contains exactly one internal order. Rule 2 ties as well (1 edge
  // each), so the first cover {0,1} is chosen deterministically.
  RbiQueryGraph rbi = MakeRbi(MakeCliqueQuery(3));
  EXPECT_EQ(rbi.red[0], 0u);
  EXPECT_EQ(rbi.red[1], 1u);
}

TEST(RbiTest, RedGraphInheritsLabels) {
  // Labeled square: whatever cover Rule 3 picks, each red-graph vertex
  // must carry the label of the query vertex it stands for.
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  q.AddEdge(3, 0);
  q.SetLabel(0, 5);
  q.SetLabel(2, 6);
  RbiQueryGraph rbi = MakeRbi(q);
  for (std::size_t i = 0; i < rbi.red.size(); ++i) {
    EXPECT_EQ(rbi.red_graph.Label(static_cast<QueryVertex>(i)),
              q.Label(rbi.red[i]))
        << "red index " << i << " = query vertex " << int{rbi.red[i]};
  }
}

}  // namespace
}  // namespace dualsim
