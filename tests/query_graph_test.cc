#include "query/query_graph.h"

#include <gtest/gtest.h>

#include "query/queries.h"

namespace dualsim {
namespace {

TEST(QueryGraphTest, EdgesAndDegrees) {
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(1, 2);
  q.AddEdge(2, 3);
  EXPECT_EQ(q.NumVertices(), 4u);
  EXPECT_EQ(q.NumEdges(), 3u);
  EXPECT_TRUE(q.HasEdge(0, 1));
  EXPECT_TRUE(q.HasEdge(1, 0));
  EXPECT_FALSE(q.HasEdge(0, 2));
  EXPECT_EQ(q.Degree(1), 2u);
  EXPECT_EQ(q.Degree(3), 1u);
}

TEST(QueryGraphTest, DuplicateEdgeIgnored) {
  QueryGraph q(2);
  q.AddEdge(0, 1);
  q.AddEdge(1, 0);
  EXPECT_EQ(q.NumEdges(), 1u);
}

TEST(QueryGraphTest, Connectivity) {
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  EXPECT_FALSE(q.IsConnected());
  q.AddEdge(1, 2);
  EXPECT_TRUE(q.IsConnected());
}

TEST(QueryGraphTest, ConnectedSubset) {
  QueryGraph q = MakePaperQuery(PaperQuery::kQ5);  // house
  EXPECT_TRUE(q.IsConnectedSubset(0b00111));       // 0,1,2 path
  EXPECT_FALSE(q.IsConnectedSubset(0b10001));      // 0 and 4 not adjacent
  EXPECT_FALSE(q.IsConnectedSubset(0));
}

TEST(QueryGraphTest, EdgesListSorted) {
  QueryGraph q = MakePaperQuery(PaperQuery::kQ3);
  auto edges = q.Edges();
  EXPECT_EQ(edges.size(), 5u);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    EXPECT_LT(edges[i], edges[i + 1]);
  }
}

TEST(PaperQueriesTest, Shapes) {
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ1).NumVertices(), 3u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ1).NumEdges(), 3u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ2).NumVertices(), 4u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ2).NumEdges(), 4u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ3).NumEdges(), 5u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ4).NumEdges(), 6u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ5).NumVertices(), 5u);
  EXPECT_EQ(MakePaperQuery(PaperQuery::kQ5).NumEdges(), 6u);
  for (PaperQuery pq : AllPaperQueries()) {
    EXPECT_TRUE(MakePaperQuery(pq).IsConnected()) << PaperQueryName(pq);
  }
}

TEST(PaperQueriesTest, HelperShapes) {
  EXPECT_EQ(MakePathQuery(4).NumEdges(), 3u);
  EXPECT_EQ(MakeStarQuery(3).NumEdges(), 3u);
  EXPECT_EQ(MakeCliqueQuery(5).NumEdges(), 10u);
  EXPECT_EQ(MakeCycleQuery(6).NumEdges(), 6u);
}

}  // namespace
}  // namespace dualsim
