#include "testkit/fuzz_util.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <numeric>

#include "graph/generators.h"
#include "graph/reorder.h"
#include "obs/metrics.h"

namespace dualsim::testkit {

FuzzConfig FuzzConfigFromEnv(std::uint64_t default_seed, int default_iters) {
  FuzzConfig cfg{default_seed, default_iters};
  if (const char* s = std::getenv("DUALSIM_FUZZ_SEED")) {
    cfg.seed = std::strtoull(s, nullptr, 0);
  }
  if (const char* s = std::getenv("DUALSIM_FUZZ_ITERS")) {
    const long v = std::strtol(s, nullptr, 0);
    if (v > 0) cfg.iters = static_cast<int>(v);
  }
  return cfg;
}

std::string ReproHint(std::uint64_t seed) {
  return "repro: DUALSIM_FUZZ_SEED=" + std::to_string(seed) +
         " DUALSIM_FUZZ_ITERS=1 <this test binary>";
}

std::string ReproHintWithMetrics(std::uint64_t seed) {
  return ReproHint(seed) + "\nmetrics: " +
         obs::Metrics().Snapshot().ToJson();
}

QueryGraph RandomConnectedQuery(Random& rng, int num_vertices) {
  while (true) {
    QueryGraph q(static_cast<std::uint8_t>(num_vertices));
    // Random spanning tree first (guarantees connectivity)...
    for (int v = 1; v < num_vertices; ++v) {
      q.AddEdge(static_cast<QueryVertex>(rng.Uniform(v)),
                static_cast<QueryVertex>(v));
    }
    // ...then sprinkle extra edges.
    const int extra = static_cast<int>(rng.Uniform(num_vertices));
    for (int i = 0; i < extra; ++i) {
      const auto a = static_cast<QueryVertex>(rng.Uniform(num_vertices));
      const auto b = static_cast<QueryVertex>(rng.Uniform(num_vertices));
      if (a != b) q.AddEdge(a, b);
    }
    if (q.IsConnected()) return q;
  }
}

QueryGraph RelabelQuery(const QueryGraph& q, Random& rng) {
  const std::uint8_t n = q.NumVertices();
  std::array<QueryVertex, kMaxQueryVertices> perm;
  std::iota(perm.begin(), perm.begin() + n, static_cast<QueryVertex>(0));
  // Fisher-Yates with the deterministic PRNG.
  for (std::uint8_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.Uniform(i)]);
  }
  QueryGraph out(n);
  for (const auto& [u, v] : q.Edges()) {
    out.AddEdge(perm[u], perm[v]);
  }
  for (QueryVertex u = 0; u < n; ++u) {
    out.SetLabel(perm[u], q.Label(u));
  }
  return out;
}

QueryGraph RandomLabeledQuery(Random& rng, int num_vertices,
                              std::uint32_t num_labels,
                              double labeled_fraction) {
  QueryGraph q = RandomConnectedQuery(rng, num_vertices);
  for (QueryVertex u = 0; u < q.NumVertices(); ++u) {
    if (rng.Bernoulli(labeled_fraction)) {
      q.SetLabel(u, static_cast<LabelId>(rng.Uniform(num_labels)));
    }
  }
  return q;
}

Graph RandomLabeledDataGraph(std::uint64_t seed, int flavor, int scale,
                             std::uint32_t num_labels) {
  // Label after the degree reorder: assignment is random anyway, and this
  // keeps the graph ready for BuildDiskGraph unchanged.
  return WithRandomLabels(RandomDataGraph(seed, flavor, scale), num_labels,
                          seed ^ 0xBADC0FFEE0DDF00DULL);
}

Graph RandomDataGraph(std::uint64_t seed, int flavor, int scale) {
  const std::uint32_t s = static_cast<std::uint32_t>(scale % 16);
  Graph raw;
  switch (((flavor % 3) + 3) % 3) {
    case 0:
      raw = ErdosRenyi(80 + s * 7, 300 + s * 23, seed);
      break;
    case 1:
      raw = RMat(7, 400 + s * 17, 0.55, 0.16, 0.16, seed);
      break;
    default:
      raw = BipartitePowerLaw(40 + s, 50, 250 + s * 11, seed);
  }
  return ReorderByDegree(raw);
}

}  // namespace dualsim::testkit
