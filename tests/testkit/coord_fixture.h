#ifndef DUALSIM_TESTS_TESTKIT_COORD_FIXTURE_H_
#define DUALSIM_TESTS_TESTKIT_COORD_FIXTURE_H_

/// Multi-process harness for the coordinator suites: builds a temp graph
/// database, starts an *in-process* coord::Coordinator that spawns one
/// dualsim_serve worker process per partition over it, and hands out
/// connected clients. Running the coordinator in the test process keeps
/// the coord.* counters in this process's registry (so MetricsProbe from
/// testkit/metrics_util.h sees them) and gives tests direct access to the
/// fault seams (CoordinatorOptions::on_dispatch, workers() pids); only the
/// workers are real separate processes, which is the part the distributed
/// path actually needs.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "coord/coordinator.h"
#include "graph/graph.h"
#include "service/client.h"
#include "util/status.h"

namespace dualsim::testkit {

/// Path of the dualsim_serve binary the coordinator spawns as workers:
/// $DUALSIM_SERVE_BIN when set (CI override), else the build-tree location
/// baked in by tests/CMakeLists.txt (DUALSIM_SERVE_BIN_PATH). Empty when
/// neither is available.
std::string ServeBinaryPath();

class CoordHarness {
 public:
  CoordHarness() = default;
  ~CoordHarness() { Stop(); }

  CoordHarness(const CoordHarness&) = delete;
  CoordHarness& operator=(const CoordHarness&) = delete;

  /// Builds `g` into a fresh temp database and starts a spawn-mode
  /// coordinator over it with `num_parts` workers. `mutate` (optional)
  /// runs after the harness fills db path / worker binary / ports, so
  /// tests can inject fault seams, retry budgets, and worker args.
  Status Start(const Graph& g, int num_parts,
               const std::function<void(coord::CoordinatorOptions&)>& mutate =
                   {});

  coord::Coordinator& coordinator() { return *coordinator_; }
  std::uint16_t port() const { return coordinator_->port(); }

  /// A client connected to the coordinator endpoint. Raises a gtest
  /// failure (but still returns the client) if the connect fails.
  std::unique_ptr<service::QueryClient> Connect();

  /// Stops the coordinator (drains, kills spawned workers) and removes
  /// the temp database. Idempotent; the destructor calls it.
  void Stop();

 private:
  std::filesystem::path dir_;
  std::unique_ptr<coord::Coordinator> coordinator_;
};

}  // namespace dualsim::testkit

#endif  // DUALSIM_TESTS_TESTKIT_COORD_FIXTURE_H_
