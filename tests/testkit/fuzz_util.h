#ifndef DUALSIM_TESTS_TESTKIT_FUZZ_UTIL_H_
#define DUALSIM_TESTS_TESTKIT_FUZZ_UTIL_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/random.h"

namespace dualsim::testkit {

/// Reproducibility knobs shared by every fuzz-style test. Defaults come
/// from the test; the environment overrides them:
///   DUALSIM_FUZZ_SEED   base seed (decimal or 0x-hex)
///   DUALSIM_FUZZ_ITERS  iteration count (raise for soak runs, lower for CI)
struct FuzzConfig {
  std::uint64_t seed = 0;
  int iters = 0;
};

/// Resolves the effective fuzz configuration from defaults + environment.
FuzzConfig FuzzConfigFromEnv(std::uint64_t default_seed, int default_iters);

/// One-line repro recipe for failure messages, e.g.
/// "repro: DUALSIM_FUZZ_SEED=42 DUALSIM_FUZZ_ITERS=1 ./the_test".
std::string ReproHint(std::uint64_t seed);

/// ReproHint plus the full MetricsSnapshot JSON, for oracle-mismatch
/// failures: a wrong count is far easier to localize when the failure
/// message shows which layer's counters diverged (windows scheduled,
/// pages faulted, embeddings per pass, ...). The JSON line is
/// "metrics: {}" when metrics are compiled out.
std::string ReproHintWithMetrics(std::uint64_t seed);

/// Random connected query graph on `num_vertices` vertices: a random
/// spanning tree (guaranteeing connectivity) plus a sprinkle of extra
/// edges, exercising arbitrary RBI colorings, v-group structures and
/// matching orders.
QueryGraph RandomConnectedQuery(Random& rng, int num_vertices);

/// `q` with its vertices relabeled by a random permutation. The result is
/// isomorphic to `q`: it must enumerate the same number of embeddings and,
/// because plans are keyed by canonical form, hit the same plan-cache
/// entry.
QueryGraph RelabelQuery(const QueryGraph& q, Random& rng);

/// Random degree-reordered data graph ready for BuildDiskGraph.
/// `flavor % 3` selects the generator family (Erdos-Renyi, R-MAT,
/// bipartite power-law); `scale >= 0` nudges vertex/edge counts so
/// consecutive iterations do not all share one shape.
Graph RandomDataGraph(std::uint64_t seed, int flavor, int scale);

/// RandomConnectedQuery with each vertex constrained to a random label
/// in [0, num_labels) with probability `labeled_fraction` (wildcard
/// otherwise) — exercising mixed labeled/unlabeled levels.
QueryGraph RandomLabeledQuery(Random& rng, int num_vertices,
                              std::uint32_t num_labels,
                              double labeled_fraction = 0.7);

/// RandomDataGraph plus a skewed random label in [0, num_labels) per
/// vertex (WithRandomLabels); still degree-reordered and ready for
/// BuildDiskGraph, which then writes the labeled v3 format.
Graph RandomLabeledDataGraph(std::uint64_t seed, int flavor, int scale,
                             std::uint32_t num_labels);

}  // namespace dualsim::testkit

#endif  // DUALSIM_TESTS_TESTKIT_FUZZ_UTIL_H_
