#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "runtime/query_session.h"
#include "runtime/runtime.h"
#include "storage/disk_graph.h"
#include "storage/fault_injection.h"
#include "testkit/fuzz_util.h"

namespace dualsim {
namespace {

using testkit::FuzzConfig;
using testkit::FuzzConfigFromEnv;
using testkit::RandomConnectedQuery;
using testkit::RandomDataGraph;
using testkit::ReproHint;
using testkit::ReproHintWithMetrics;

/// Differential fuzzing of the fault-injecting stack: seeded random data
/// graphs x random connected queries, run through PageFile + BufferPool +
/// window scheduler with faults injected underneath. The invariant under
/// test: a fault may delay a query or fail it with a clean Status, but a
/// run that reports success must return exactly the brute-force oracle
/// count. Override DUALSIM_FUZZ_SEED / DUALSIM_FUZZ_ITERS to reproduce or
/// extend a run.
class DifferentialFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_diff_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Builds the iteration's data graph on disk and opens it with a fresh
  /// injector seeded from `seed`.
  struct Fixture {
    Graph g;
    std::shared_ptr<FaultInjector> injector;
    std::unique_ptr<DiskGraph> disk;
  };
  Fixture MakeFixture(std::uint64_t seed, int flavor) {
    Fixture f;
    f.g = RandomDataGraph(seed, flavor, flavor);
    const std::string path =
        (dir_ / ("g" + std::to_string(seed) + ".db")).string();
    EXPECT_TRUE(BuildDiskGraph(f.g, path, 512).ok()) << ReproHint(seed);
    f.injector = std::make_shared<FaultInjector>(seed);
    auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false, f.injector);
    EXPECT_TRUE(disk.ok()) << ReproHint(seed);
    f.disk = std::move(disk).value();
    return f;
  }

  std::filesystem::path dir_;
};

/// All random faults are transient (the injector never fails a page twice
/// in a row), so the buffer pool's bounded retry must absorb every one of
/// them: each run succeeds and matches the oracle exactly.
TEST_F(DifferentialFuzzTest, TransientRandomFaultsPreserveAnswers) {
  const FuzzConfig cfg = FuzzConfigFromEnv(20260806, 6);
  std::uint64_t total_faults = 0;
  std::uint64_t total_retries = 0;
  for (int iter = 0; iter < cfg.iters; ++iter) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(iter);
    Fixture f = MakeFixture(seed, iter);
    f.injector->SetRandomReadFaults(0.10);
    if (iter % 2 == 0) f.injector->DelayReads(FaultInjector::kAnyPage, 20);

    RuntimeOptions ropts;
    ropts.num_threads = 1 + iter % 4;
    Runtime runtime(f.disk.get(), ropts);
    QuerySession session(&runtime);

    Random rng(seed * 7919 + 13);
    for (int trial = 0; trial < 3; ++trial) {
      const QueryGraph q = RandomConnectedQuery(rng, 3 + iter % 3);
      const std::uint64_t want = CountOccurrences(f.g, q);
      auto got = session.Run(q);
      ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n"
                            << q.ToString() << "\n"
                            << ReproHint(seed);
      EXPECT_EQ(got->embeddings, want) << q.ToString() << "\n"
                                       << ReproHintWithMetrics(seed);
    }
    total_faults += f.injector->stats().read_faults;
    total_retries += runtime.stats().io.read_retries;
  }
  // The fault plan actually fired, and every fault was absorbed by a retry.
  EXPECT_GT(total_faults, 0u) << ReproHint(cfg.seed);
  EXPECT_GE(total_retries, total_faults) << ReproHint(cfg.seed);
}

/// Acceptance scenario: a scheduled transient read error (first read of
/// whichever page the engine touches first) is retried and the query still
/// returns the exact oracle count — deterministically, not just with high
/// probability.
TEST_F(DifferentialFuzzTest, ScheduledTransientFaultRetriesToOracle) {
  const FuzzConfig cfg = FuzzConfigFromEnv(777, 1);
  Fixture f = MakeFixture(cfg.seed, 0);
  // Reads 1..2 globally fail. The ordinals are global, so in the worst
  // interleaving one read's initial attempt and first retry absorb both
  // faults — still within the default budget of 2 retries, so the run
  // recovers no matter how the I/O threads are scheduled.
  f.injector->FailRead(FaultInjector::kAnyPage, /*nth=*/1, /*count=*/2);

  Runtime runtime(f.disk.get(), RuntimeOptions{});
  QuerySession session(&runtime);
  Random rng(cfg.seed);
  const QueryGraph q = RandomConnectedQuery(rng, 4);
  const std::uint64_t want = CountOccurrences(f.g, q);

  auto got = session.Run(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString() << ReproHint(cfg.seed);
  EXPECT_EQ(got->embeddings, want) << ReproHintWithMetrics(cfg.seed);
  EXPECT_GT(got->io.read_retries, 0u);
  EXPECT_GT(f.injector->stats().read_faults, 0u);
}

/// Acceptance scenario: under a permanent fault the session fails with a
/// clean non-OK status, leaks no pinned frames, and — once the "device" is
/// healed — the same session answers the query exactly.
TEST_F(DifferentialFuzzTest, PermanentFaultFailsCleanlyAndHealsAfterClear) {
  const FuzzConfig cfg = FuzzConfigFromEnv(4242, 1);
  Fixture f = MakeFixture(cfg.seed, 1);
  f.injector->FailReadForever(FaultInjector::kAnyPage);

  Runtime runtime(f.disk.get(), RuntimeOptions{});
  QuerySession session(&runtime);
  Random rng(cfg.seed);
  const QueryGraph q = RandomConnectedQuery(rng, 4);
  const std::uint64_t want = CountOccurrences(f.g, q);

  auto got = session.Run(q);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError)
      << got.status().ToString();

  // Zero leaked pinned frames: admitting a fresh lease sees every frame of
  // the pool available again.
  {
    auto lease = runtime.Admit(1, 0);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(lease->pool()->AvailableFrames(), runtime.num_frames());
  }

  f.injector->ClearFaults();
  auto healed = session.Run(q);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString() << ReproHint(cfg.seed);
  EXPECT_EQ(healed->embeddings, want) << ReproHintWithMetrics(cfg.seed);
  // The injector kept counting after ClearFaults, but stopped faulting.
  EXPECT_GT(f.injector->stats().reads_seen, 0u);
}

/// Concurrent sessions of one runtime under latency + transient faults:
/// both streams must complete with their own oracle counts (no cross-talk,
/// no starvation deadlock).
TEST_F(DifferentialFuzzTest, ConcurrentSessionsUnderTransientFaults) {
  const FuzzConfig cfg = FuzzConfigFromEnv(9001, 3);
  for (int iter = 0; iter < cfg.iters; ++iter) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(iter);
    Fixture f = MakeFixture(seed, 2);
    f.injector->SetRandomReadFaults(0.05);
    f.injector->DelayReads(FaultInjector::kAnyPage, 50);

    RuntimeOptions ropts;
    ropts.num_threads = 2;
    Runtime runtime(f.disk.get(), ropts);

    Random rng(seed ^ 0xabcdef);
    const QueryGraph q1 = RandomConnectedQuery(rng, 3);
    const QueryGraph q2 = RandomConnectedQuery(rng, 4);
    const std::uint64_t want1 = CountOccurrences(f.g, q1);
    const std::uint64_t want2 = CountOccurrences(f.g, q2);

    SessionOptions sopts;
    sopts.max_frames = 64;  // leave room for the sibling
    QuerySession s1(&runtime, sopts);
    QuerySession s2(&runtime, sopts);
    StatusOr<EngineStats> r1 = Status::Internal("not run");
    StatusOr<EngineStats> r2 = Status::Internal("not run");
    std::thread t1([&] { r1 = s1.Run(q1); });
    std::thread t2([&] { r2 = s2.Run(q2); });
    t1.join();
    t2.join();

    ASSERT_TRUE(r1.ok()) << r1.status().ToString() << ReproHint(seed);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString() << ReproHint(seed);
    EXPECT_EQ(r1->embeddings, want1) << q1.ToString()
                                     << ReproHintWithMetrics(seed);
    EXPECT_EQ(r2->embeddings, want2) << q2.ToString()
                                     << ReproHintWithMetrics(seed);
  }
}

/// Torn-write injection during BuildDiskGraph: the build must fail with a
/// clean status (not a crash), and a rebuild without the fault must produce
/// a database that answers queries exactly.
TEST_F(DifferentialFuzzTest, TornWriteDuringBuildFailsCleanly) {
  const FuzzConfig cfg = FuzzConfigFromEnv(31337, 1);
  Graph g = RandomDataGraph(cfg.seed, 0, 3);
  const std::string path = (dir_ / "torn.db").string();

  auto injector = std::make_shared<FaultInjector>(cfg.seed);
  injector->TornWrite(FaultInjector::kAnyPage, /*nth=*/2, /*bytes=*/100);
  Status torn = BuildDiskGraph(g, path, 512, false, injector);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kIOError) << torn.ToString();
  EXPECT_GT(injector->stats().torn_writes, 0u);

  // Rebuild on a healthy "device" and cross-check a query.
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".meta");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  Runtime runtime(disk->get(), RuntimeOptions{});
  QuerySession session(&runtime);
  Random rng(cfg.seed);
  const QueryGraph q = RandomConnectedQuery(rng, 3);
  auto got = session.Run(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->embeddings, CountOccurrences(g, q))
      << ReproHintWithMetrics(cfg.seed);
}

}  // namespace
}  // namespace dualsim
