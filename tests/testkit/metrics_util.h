#ifndef DUALSIM_TESTS_TESTKIT_METRICS_UTIL_H_
#define DUALSIM_TESTS_TESTKIT_METRICS_UTIL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace dualsim::testkit {

/// Point-in-time counter values captured before the code under test runs;
/// Delta() reads the live registry again and subtracts. Use deltas, not
/// absolute values: the registry is process-wide and earlier tests in the
/// same binary leave their counts behind.
class MetricsProbe {
 public:
  MetricsProbe() : before_(obs::Metrics().Snapshot()) {}

  std::uint64_t Delta(std::string_view name) const {
    const obs::MetricsSnapshot now = obs::Metrics().Snapshot();
    return now.counter(name) - before_.counter(name);
  }

  const obs::MetricsSnapshot& before() const { return before_; }

 private:
  obs::MetricsSnapshot before_;
};

/// Asserts that counter `name` advanced by exactly `expected` since `probe`
/// was constructed. A no-op GTEST_SKIP-free pass when the metrics layer is
/// compiled out (DUALSIM_NO_METRICS), so the same test binary runs in both
/// configurations.
inline void ExpectMetricDelta(const MetricsProbe& probe, std::string_view name,
                              std::uint64_t expected) {
  if (!obs::kMetricsEnabled) return;
  EXPECT_EQ(probe.Delta(name), expected)
      << "counter " << name << " delta mismatch";
}

}  // namespace dualsim::testkit

#endif  // DUALSIM_TESTS_TESTKIT_METRICS_UTIL_H_
