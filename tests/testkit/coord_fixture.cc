#include "testkit/coord_fixture.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <system_error>

#include "storage/disk_graph.h"

#ifndef DUALSIM_SERVE_BIN_PATH
#define DUALSIM_SERVE_BIN_PATH ""
#endif

namespace dualsim::testkit {

std::string ServeBinaryPath() {
  if (const char* env = std::getenv("DUALSIM_SERVE_BIN");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return DUALSIM_SERVE_BIN_PATH;
}

Status CoordHarness::Start(
    const Graph& g, int num_parts,
    const std::function<void(coord::CoordinatorOptions&)>& mutate) {
  Stop();
  // Per-harness dir: several harnesses run sequentially in one binary.
  static int harness_counter = 0;
  dir_ = std::filesystem::temp_directory_path() /
         ("dualsim_coord_harness_" + std::to_string(::getpid()) + "_" +
          std::to_string(harness_counter++));
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return Status::IOError("cannot create " + dir_.string());
  const std::string db = (dir_ / "g.db").string();
  if (Status s = BuildDiskGraph(g, db, /*page_size=*/512); !s.ok()) return s;

  coord::CoordinatorOptions opt;
  opt.db_path = db;
  opt.num_parts = num_parts;
  opt.worker_binary = ServeBinaryPath();
  if (opt.worker_binary.empty()) {
    return Status::FailedPrecondition(
        "dualsim_serve binary unknown: set DUALSIM_SERVE_BIN or build the "
        "examples");
  }
  if (mutate) mutate(opt);

  coordinator_ = std::make_unique<coord::Coordinator>(std::move(opt));
  Status s = coordinator_->Start();
  if (!s.ok()) coordinator_.reset();
  return s;
}

std::unique_ptr<service::QueryClient> CoordHarness::Connect() {
  auto client = std::make_unique<service::QueryClient>();
  Status s = client->Connect("127.0.0.1", coordinator_->port());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return client;
}

void CoordHarness::Stop() {
  if (coordinator_ != nullptr) {
    coordinator_->Stop();
    coordinator_.reset();
  }
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    dir_.clear();
  }
}

}  // namespace dualsim::testkit
