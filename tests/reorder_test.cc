#include "graph/reorder.h"

#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/generators.h"

namespace dualsim {
namespace {

TEST(ReorderTest, DegreeIdLessMatchesPaperOrder) {
  // Degrees: 0:1, 1:2, 2:1 — order should be 0 ≺ 2 ≺ 1.
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  Graph g = b.Build();
  EXPECT_TRUE(DegreeIdLess(g, 0, 2));   // equal degree, smaller id
  EXPECT_TRUE(DegreeIdLess(g, 2, 1));   // smaller degree
  EXPECT_FALSE(DegreeIdLess(g, 1, 0));
}

TEST(ReorderTest, PermutationSortsByDegreeThenId) {
  Graph g = Star(5);  // center 0 degree 4; leaves degree 1
  auto perm = DegreeOrderPermutation(g);
  ASSERT_EQ(perm.size(), 5u);
  EXPECT_EQ(perm.back(), 0u);  // hub last
  for (std::size_t i = 0; i + 2 < perm.size(); ++i) {
    EXPECT_LT(perm[i], perm[i + 1]);  // leaves keep id order
  }
}

TEST(ReorderTest, ReorderedGraphIsDegreeOrdered) {
  Graph g = RMat(8, 600, 0.6, 0.15, 0.15, 11);
  EXPECT_FALSE(IsDegreeOrdered(g));  // RMAT hubs are at low ids
  Graph r = ReorderByDegree(g);
  EXPECT_TRUE(IsDegreeOrdered(r));
  EXPECT_EQ(r.NumVertices(), g.NumVertices());
  EXPECT_EQ(r.NumEdges(), g.NumEdges());
}

TEST(ReorderTest, ReorderPreservesDegreeMultiset) {
  Graph g = ErdosRenyi(200, 800, 5);
  Graph r = ReorderByDegree(g);
  std::vector<std::uint32_t> before;
  std::vector<std::uint32_t> after;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    before.push_back(g.Degree(v));
    after.push_back(r.Degree(v));
  }
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

TEST(ReorderTest, IdempotentOnOrderedGraph) {
  Graph r = ReorderByDegree(ErdosRenyi(100, 400, 2));
  Graph r2 = ReorderByDegree(r);
  EXPECT_EQ(r.offsets(), r2.offsets());
  EXPECT_EQ(r.neighbors(), r2.neighbors());
}

}  // namespace
}  // namespace dualsim
