#include "baseline/bruteforce.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "query/queries.h"
#include "query/symmetry_breaking.h"

namespace dualsim {
namespace {

std::uint64_t Choose(std::uint64_t n, std::uint64_t k) {
  if (k > n) return 0;
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < k; ++i) r = r * (n - i) / (i + 1);
  return r;
}

TEST(BruteForceTest, TrianglesInCompleteGraph) {
  // K_n contains C(n,3) triangles.
  for (std::uint32_t n : {3u, 4u, 6u, 8u}) {
    EXPECT_EQ(CountOccurrences(Complete(n), MakeCliqueQuery(3)),
              Choose(n, 3))
        << n;
  }
}

TEST(BruteForceTest, CliquesInCompleteGraph) {
  EXPECT_EQ(CountOccurrences(Complete(6), MakeCliqueQuery(4)), Choose(6, 4));
  EXPECT_EQ(CountOccurrences(Complete(7), MakeCliqueQuery(5)), Choose(7, 5));
}

TEST(BruteForceTest, SquaresInCompleteGraph) {
  // #4-cycles in K_n = 3 * C(n,4) (each 4-subset hosts 3 distinct cycles).
  EXPECT_EQ(CountOccurrences(Complete(5), MakeCycleQuery(4)),
            3 * Choose(5, 4));
  EXPECT_EQ(CountOccurrences(Complete(6), MakeCycleQuery(4)),
            3 * Choose(6, 4));
}

TEST(BruteForceTest, EdgesCountedOnce) {
  Graph g = ErdosRenyi(50, 120, 1);
  EXPECT_EQ(CountOccurrences(g, MakePathQuery(2)), g.NumEdges());
}

TEST(BruteForceTest, CycleHasNoTriangles) {
  EXPECT_EQ(CountOccurrences(Cycle(10), MakeCliqueQuery(3)), 0u);
}

TEST(BruteForceTest, SquareInCycle) {
  // C4 contains exactly one square; C5 none.
  EXPECT_EQ(CountOccurrences(Cycle(4), MakeCycleQuery(4)), 1u);
  EXPECT_EQ(CountOccurrences(Cycle(5), MakeCycleQuery(4)), 0u);
}

TEST(BruteForceTest, PathsInPathGraph) {
  // P5 graph (5 vertices in a line) contains 3 copies of P3.
  EXPECT_EQ(CountOccurrences(Path(5), MakePathQuery(3)), 3u);
}

TEST(BruteForceTest, StarsInStarGraph) {
  // Star query with k leaves in a star graph with m leaves: C(m, k)
  // placements (center forced; leaves interchangeable under symmetry).
  EXPECT_EQ(CountOccurrences(Star(6), MakeStarQuery(3)), Choose(5, 3));
}

TEST(BruteForceTest, HouseInCompleteGraph) {
  // K5: every 5-subset (just one) hosts 5!/|Aut(house)| = 120/2 = 60.
  EXPECT_EQ(CountOccurrences(Complete(5), MakePaperQuery(PaperQuery::kQ5)),
            60u);
}

TEST(BruteForceTest, VisitorSeesEveryEmbeddingOnce) {
  Graph g = ErdosRenyi(30, 90, 3);
  const QueryGraph q = MakeCliqueQuery(3);
  auto orders = FindPartialOrders(q);
  std::vector<Embedding> seen;
  const std::uint64_t n = EnumerateBruteForce(
      g, q, orders, [&](const Embedding& m) { seen.push_back(m); });
  EXPECT_EQ(n, seen.size());
  // All embeddings distinct, satisfy orders and edges.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
  for (const auto& m : seen) {
    EXPECT_TRUE(SatisfiesPartialOrders(orders, m));
    for (QueryVertex u = 0; u < q.NumVertices(); ++u) {
      for (QueryVertex v = u + 1; v < q.NumVertices(); ++v) {
        if (q.HasEdge(u, v)) EXPECT_TRUE(g.HasEdge(m[u], m[v]));
      }
    }
  }
}

TEST(BruteForceTest, BipartiteHasNoOddStructures) {
  Graph g = BipartitePowerLaw(40, 40, 200, 5);
  EXPECT_EQ(CountOccurrences(g, MakeCliqueQuery(3)), 0u);
  EXPECT_EQ(CountOccurrences(g, MakeCliqueQuery(4)), 0u);
  EXPECT_EQ(CountOccurrences(g, MakePaperQuery(PaperQuery::kQ5)), 0u);
}

}  // namespace
}  // namespace dualsim
