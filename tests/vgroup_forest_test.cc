#include "core/vgroup_forest.h"

#include <gtest/gtest.h>

#include "core/sequences.h"
#include "query/queries.h"

namespace dualsim {
namespace {

std::vector<VGroupSequence> SquareGroups() {
  // Red graph of the square: path 0-1-2, internal orders 0<1, 0<2.
  QueryGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  return GroupSequencesByTopology(
      path, EnumerateFullOrderSequences(path, {{0, 1}, {0, 2}}));
}

TEST(VGroupForestTest, ChainTopologyHasNoCartesian) {
  auto groups = SquareGroups();
  ASSERT_EQ(groups.size(), 2u);
  // Find the group whose topology is the positional chain 0-1-2 (member
  // [0,1,2]).
  const VGroupSequence* chain = nullptr;
  for (const auto& g : groups) {
    if (g.PositionsAdjacent(0, 1) && g.PositionsAdjacent(1, 2)) chain = &g;
  }
  ASSERT_NE(chain, nullptr);
  MatchingOrder identity = {0, 1, 2};
  VGroupForest f = BuildVGroupForest(*chain, identity);
  EXPECT_EQ(f.parent_level[0], -1);
  EXPECT_EQ(f.parent_level[1], 0);
  EXPECT_EQ(f.parent_level[2], 1);
  EXPECT_EQ(f.NumCartesianProducts(), 0);
}

TEST(VGroupForestTest, DisconnectedPositionIsCartesian) {
  auto groups = SquareGroups();
  // The other group has positional adjacency {0-2, 1-2}: under identity
  // order, level 1 (position 1) is not adjacent to position 0 -> root.
  const VGroupSequence* forked = nullptr;
  for (const auto& g : groups) {
    if (!g.PositionsAdjacent(0, 1)) forked = &g;
  }
  ASSERT_NE(forked, nullptr);
  MatchingOrder identity = {0, 1, 2};
  VGroupForest f = BuildVGroupForest(*forked, identity);
  EXPECT_EQ(f.parent_level[1], -1);
  EXPECT_EQ(f.NumCartesianProducts(), 1);
}

TEST(VGroupForestTest, GlobalOrderEliminatesCartesians) {
  // Paper Figure 4(b): ordering the shared position first removes all
  // Cartesian products for the square's two v-groups.
  auto groups = SquareGroups();
  MatchingOrder best = FindGlobalMatchingOrder(groups, 3);
  EXPECT_EQ(CountCartesianProducts(groups, best), 0);
}

TEST(VGroupForestTest, ParentIsDeepestAdjacent) {
  // Clique topology: every position adjacent; parent should be the deepest
  // previous level (a chain), mirroring "farthest from its root".
  QueryGraph k4 = MakeCliqueQuery(4);
  auto groups =
      GroupSequencesByTopology(k4, EnumerateFullOrderSequences(k4, {}));
  ASSERT_EQ(groups.size(), 1u);
  MatchingOrder identity = {0, 1, 2, 3};
  VGroupForest f = BuildVGroupForest(groups[0], identity);
  EXPECT_EQ(f.parent_level[1], 0);
  EXPECT_EQ(f.parent_level[2], 1);
  EXPECT_EQ(f.parent_level[3], 2);
}

TEST(VGroupForestTest, SingleLevelForest) {
  QueryGraph k1(1);
  VGroupSequence group;
  group.members.push_back({0});
  MatchingOrder mo = {0};
  VGroupForest f = BuildVGroupForest(group, mo);
  EXPECT_EQ(f.parent_level.size(), 1u);
  EXPECT_EQ(f.parent_level[0], -1);
  EXPECT_EQ(f.NumCartesianProducts(), 0);
}

TEST(VGroupForestTest, FindGlobalMatchingOrderDeterministic) {
  auto groups = SquareGroups();
  MatchingOrder a = FindGlobalMatchingOrder(groups, 3);
  MatchingOrder b = FindGlobalMatchingOrder(groups, 3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dualsim
