#include "runtime/runtime.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/queries.h"
#include "runtime/query_session.h"
#include "storage/disk_graph.h"
#include "testkit/metrics_util.h"

namespace dualsim {
namespace {

using testkit::ExpectMetricDelta;
using testkit::MetricsProbe;

/// Same fixture shape as engine_test: build the disk database for a
/// degree-reordered graph in a per-test temp dir.
class RuntimeTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_runtime_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<DiskGraph> BuildDisk(const Graph& ordered,
                                       std::size_t page_size = 512) {
    const std::string path = (dir_ / "g.db").string();
    Status s = BuildDiskGraph(ordered, path, page_size);
    EXPECT_TRUE(s.ok()) << s.ToString();
    auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
    EXPECT_TRUE(disk.ok()) << disk.status().ToString();
    return std::move(*disk);
  }

  std::filesystem::path dir_;
};

RuntimeOptions SmallRuntimeOptions() {
  RuntimeOptions options;
  options.buffer_fraction = 0.3;
  options.num_threads = 4;
  return options;
}

TEST_F(RuntimeTestBase, SecondRunOfSameQueryHitsPlanCache) {
  Graph g = ReorderByDegree(ErdosRenyi(300, 1500, 7));
  auto disk = BuildDisk(g);
  EngineOptions options;
  options.buffer_fraction = 0.3;
  options.num_threads = 4;
  DualSimEngine engine(disk.get(), options);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);

  auto cold = engine.Run(q);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->plan_cached);
  EXPECT_GE(cold->plan_cache_misses, 1u);

  auto warm = engine.Run(q);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->plan_cached);
  EXPECT_GE(warm->plan_cache_hits, 1u);
  // A cache hit reports the lookup time, not a fresh preparation step.
  EXPECT_LT(warm->prepare_millis, 1.0);
  EXPECT_EQ(warm->embeddings, cold->embeddings);
  EXPECT_EQ(warm->embeddings, CountOccurrences(g, q));
}

TEST_F(RuntimeTestBase, IsomorphicQueryHitsCacheWithRemappedVisitor) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 700, 11));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  QuerySession session(&runtime);

  // Two labelings of the wedge (path on 3): centered at vertex 1 vs 2.
  QueryGraph a(3);
  a.AddEdge(0, 1);
  a.AddEdge(1, 2);
  QueryGraph b(3);
  b.AddEdge(0, 2);
  b.AddEdge(1, 2);

  auto first = session.Run(a);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->plan_cached);

  std::mutex mu;
  std::vector<std::vector<VertexId>> seen;
  auto second = session.Run(b, [&](std::span<const VertexId> m) {
    std::lock_guard<std::mutex> lock(mu);
    seen.emplace_back(m.begin(), m.end());
  });
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->plan_cached) << "isomorphic query should share a plan";
  EXPECT_EQ(second->embeddings, first->embeddings);
  EXPECT_EQ(second->embeddings, CountOccurrences(g, b));
  EXPECT_EQ(second->embeddings, seen.size());

  // The visitor must see mappings indexed by b's own vertices even though
  // the cached plan enumerates the canonical relabeling.
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end())
      << "duplicate embeddings";
  for (const auto& m : seen) {
    for (QueryVertex u = 0; u < b.NumVertices(); ++u) {
      for (QueryVertex v = static_cast<QueryVertex>(u + 1);
           v < b.NumVertices(); ++v) {
        if (b.HasEdge(u, v)) {
          EXPECT_TRUE(g.HasEdge(m[u], m[v]))
              << "non-edge mapped for query edge (" << int(u) << "," << int(v)
              << ")";
        }
      }
    }
  }
}

TEST_F(RuntimeTestBase, ExplicitFrameBudgetTooSmallIsInvalidArgument) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 3));
  auto disk = BuildDisk(g);
  EngineOptions options;
  options.num_frames = 4;  // below any plan's minimum
  options.num_threads = 4;
  DualSimEngine engine(disk.get(), options);
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ4));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
}

TEST_F(RuntimeTestBase, SessionFrameCapTooSmallIsInvalidArgument) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 3));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  SessionOptions session_options;
  session_options.max_frames = 4;
  QuerySession session(&runtime, session_options);
  auto result = session.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status().ToString();
}

TEST_F(RuntimeTestBase, AdmitReservesAndReleasesFrameQuotas) {
  Graph g = ReorderByDegree(ErdosRenyi(100, 400, 5));
  auto disk = BuildDisk(g);
  RuntimeOptions options = SmallRuntimeOptions();
  options.num_frames = 64;
  Runtime runtime(disk.get(), options);
  EXPECT_EQ(runtime.num_frames(), 64u);

  {
    auto a = runtime.Admit(/*min_frames=*/10, /*max_frames=*/16);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_EQ(a->frames(), 16u);
    // A second session fits beside the first; with no cap it takes the rest.
    auto b = runtime.Admit(/*min_frames=*/10, /*max_frames=*/0);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(b->frames(), 48u);
    EXPECT_EQ(a->pool(), b->pool());
  }
  // Leases released: the full pool is available again.
  auto c = runtime.Admit(/*min_frames=*/10, /*max_frames=*/0);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->frames(), 64u);

  // An explicit pool size is a hard budget.
  auto too_big = runtime.Admit(/*min_frames=*/100, /*max_frames=*/0);
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kInvalidArgument);
}

/// Sweeps explicit frame budgets from absurdly small upward. Every budget
/// must either be rejected up front (InvalidArgument, before any I/O) or
/// produce the exact oracle count — in particular at the exactly-minimum
/// budget, where the window scheduler has no slack at all. Once a budget
/// works, every larger one must too.
TEST_F(RuntimeTestBase, ExactMinimumFrameBudgetStillAnswersExactly) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 700, 13));
  auto disk = BuildDisk(g);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);
  const std::uint64_t want = CountOccurrences(g, q);

  std::size_t first_success = 0;
  for (std::size_t frames = 1; frames <= 64; ++frames) {
    RuntimeOptions options;
    options.num_frames = frames;
    options.num_threads = 2;
    Runtime runtime(disk.get(), options);
    QuerySession session(&runtime);
    auto result = session.Run(q);
    if (result.ok()) {
      if (first_success == 0) first_success = frames;
      EXPECT_EQ(result->embeddings, want) << "num_frames=" << frames;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << "num_frames=" << frames << ": " << result.status().ToString();
      EXPECT_EQ(first_success, 0u)
          << "budget " << frames << " rejected after " << first_success
          << " succeeded";
    }
  }
  ASSERT_GT(first_success, 0u) << "no budget up to 64 frames admitted Q1";
  EXPECT_GT(first_success, 1u) << "a 1-frame budget cannot be enough";
}

/// Plan-cache eviction under concurrent sessions: six pairwise
/// non-isomorphic queries churn through a capacity-2 cache from four
/// threads. Every run must still return its oracle count, and the cache
/// must never exceed its capacity.
TEST_F(RuntimeTestBase, PlanCacheEvictionUnderConcurrentSessions) {
  Graph g = ReorderByDegree(ErdosRenyi(120, 500, 17));
  auto disk = BuildDisk(g);
  RuntimeOptions options = SmallRuntimeOptions();
  options.plan_cache_capacity = 2;
  Runtime runtime(disk.get(), options);

  std::vector<QueryGraph> queries;
  {
    QueryGraph path3(3);
    path3.AddEdge(0, 1);
    path3.AddEdge(1, 2);
    QueryGraph triangle(3);
    triangle.AddEdge(0, 1);
    triangle.AddEdge(1, 2);
    triangle.AddEdge(0, 2);
    QueryGraph star4(4);
    star4.AddEdge(0, 1);
    star4.AddEdge(0, 2);
    star4.AddEdge(0, 3);
    QueryGraph path4(4);
    path4.AddEdge(0, 1);
    path4.AddEdge(1, 2);
    path4.AddEdge(2, 3);
    QueryGraph cycle4(4);
    cycle4.AddEdge(0, 1);
    cycle4.AddEdge(1, 2);
    cycle4.AddEdge(2, 3);
    cycle4.AddEdge(0, 3);
    QueryGraph diamond(4);
    diamond.AddEdge(0, 1);
    diamond.AddEdge(1, 2);
    diamond.AddEdge(2, 3);
    diamond.AddEdge(0, 3);
    diamond.AddEdge(0, 2);
    queries = {path3, triangle, star4, path4, cycle4, diamond};
  }
  std::vector<std::uint64_t> want;
  want.reserve(queries.size());
  for (const QueryGraph& q : queries) want.push_back(CountOccurrences(g, q));

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 6;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SessionOptions sopts;
      sopts.max_frames = 48;  // leave room for the other sessions
      QuerySession session(&runtime, sopts);
      for (int i = 0; i < kRunsPerThread; ++i) {
        const std::size_t qi = static_cast<std::size_t>(t + i) % queries.size();
        auto result = session.Run(queries[qi]);
        if (!result.ok()) {
          failures[t] = result.status().ToString();
          return;
        }
        if (result->embeddings != want[qi]) {
          failures[t] = "query " + std::to_string(qi) + ": got " +
                        std::to_string(result->embeddings) + " want " +
                        std::to_string(want[qi]);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], "") << "thread " << t;
  }

  const RuntimeStats stats = runtime.stats();
  EXPECT_LE(stats.plan_cache.entries, 2u);
  EXPECT_EQ(stats.plan_cache.capacity, 2u);
  // Six distinct canonical queries through a 2-entry cache: evictions
  // force re-preparation, so misses exceed the distinct-query count.
  EXPECT_GT(stats.plan_cache.misses, queries.size());
  EXPECT_EQ(stats.sessions_completed,
            static_cast<std::uint64_t>(kThreads * kRunsPerThread));
}

TEST_F(RuntimeTestBase, StatsAggregateAcrossSessions) {
  Graph g = ReorderByDegree(ErdosRenyi(300, 1500, 7));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  QuerySession s1(&runtime);
  QuerySession s2(&runtime);

  auto r1 = s1.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  auto r2 = s2.Run(MakePaperQuery(PaperQuery::kQ2));
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  auto r3 = s1.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_TRUE(r3.ok()) << r3.status().ToString();

  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.sessions_completed, 3u);
  EXPECT_GT(stats.num_frames, 0u);
  EXPECT_GE(stats.io.physical_reads,
            r1->io.physical_reads + r2->io.physical_reads +
                r3->io.physical_reads);
  EXPECT_EQ(stats.plan_cache.misses, 2u);  // Q1 prepared once, Q2 once
  EXPECT_EQ(stats.plan_cache.hits, 1u);    // second Q1 run
  EXPECT_EQ(stats.plan_cache.entries, 2u);
}

// ---------------------------------------------------------------------------
// Metric invariants: runtime-layer counters must agree with the runtime's
// own stats and with what each Run() reports.
// ---------------------------------------------------------------------------

TEST_F(RuntimeTestBase, PlanCacheAndSessionMetricsTrackRuns) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 23));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  QuerySession session(&runtime);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);

  MetricsProbe probe;
  ASSERT_TRUE(session.Run(q).ok());
  ASSERT_TRUE(session.Run(q).ok());
  ExpectMetricDelta(probe, "plancache.misses", 1);  // first run prepares
  ExpectMetricDelta(probe, "plancache.hits", 1);    // second run reuses
  ExpectMetricDelta(probe, "session.runs", 2);
  ExpectMetricDelta(probe, "session.runs_failed", 0);
  ExpectMetricDelta(probe, "runtime.admissions", 2);
  ExpectMetricDelta(probe, "runtime.sessions_completed", 2);
}

TEST_F(RuntimeTestBase, CancelledRunEmitsCancellationAndSchedulesNothing) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 29));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  QuerySession session(&runtime);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);

  MetricsProbe probe;
  session.Cancel();
  auto result = session.Run(q);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  ExpectMetricDelta(probe, "session.cancellations", 1);
  // The cancel was observed before any window was dispatched.
  ExpectMetricDelta(probe, "scheduler.windows", 0);
  ExpectMetricDelta(probe, "session.runs_failed", 0);  // cancel != failure

  // A cancelled Run() clears the request; the session stays usable.
  EXPECT_FALSE(session.cancel_requested());
  auto again = session.Run(q);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->embeddings, CountOccurrences(g, q));
}

TEST_F(RuntimeTestBase, SessionTraceRecordsRunPhases) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 31));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  obs::TraceContext trace("runtime_test");
  SessionOptions sopts;
  sopts.trace = &trace;
  QuerySession session(&runtime, sopts);
  ASSERT_TRUE(session.Run(MakePaperQuery(PaperQuery::kQ1)).ok());
  if (!obs::kMetricsEnabled) {
    EXPECT_TRUE(trace.spans().empty());
    return;
  }
  std::vector<std::string> names;
  for (const auto& span : trace.spans()) names.emplace_back(span.name);
  for (const char* expected :
       {"session.prepare", "session.admit", "scheduler.execute",
        "session.run"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing span " << expected;
  }
  // session.run is the outermost span: it closes last.
  EXPECT_EQ(names.back(), "session.run");
}

TEST(ValidateRuntimeOptionsTest, RejectsDegenerateKnobs) {
  EXPECT_TRUE(ValidateRuntimeOptions(RuntimeOptions{}).ok());

  RuntimeOptions no_io;
  no_io.io_threads = 0;
  Status s = ValidateRuntimeOptions(no_io);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("io_threads"), std::string::npos) << s.ToString();

  RuntimeOptions negative_cpu;
  negative_cpu.num_threads = -3;
  s = ValidateRuntimeOptions(negative_cpu);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("num_threads"), std::string::npos)
      << s.ToString();

  RuntimeOptions no_buffer;
  no_buffer.num_frames = 0;
  no_buffer.buffer_fraction = 0.0;
  s = ValidateRuntimeOptions(no_buffer);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("buffer_fraction"), std::string::npos)
      << s.ToString();

  // An explicit frame budget does not need a buffer fraction.
  RuntimeOptions explicit_frames;
  explicit_frames.num_frames = 32;
  explicit_frames.buffer_fraction = 0.0;
  EXPECT_TRUE(ValidateRuntimeOptions(explicit_frames).ok());

  RuntimeOptions negative_retries;
  negative_retries.max_read_retries = -1;
  s = ValidateRuntimeOptions(negative_retries);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("max_read_retries"), std::string::npos)
      << s.ToString();
}

TEST_F(RuntimeTestBase, DegenerateRuntimeRefusesAdmissionWithTypedError) {
  Graph g = ReorderByDegree(ErdosRenyi(100, 400, 3));
  auto disk = BuildDisk(g);
  RuntimeOptions bad;
  bad.io_threads = 0;
  Runtime runtime(disk.get(), bad);

  // The constructor records the verdict instead of building a degenerate
  // pool; every session run surfaces it as a descriptive error.
  ASSERT_FALSE(runtime.init_status().ok());
  EXPECT_EQ(runtime.init_status().code(), StatusCode::kInvalidArgument);

  QuerySession session(&runtime);
  auto result = session.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("io_threads"), std::string::npos)
      << result.status().ToString();
}

TEST_F(RuntimeTestBase, SessionProgressReportsMonotoneCounts) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 42));
  auto disk = BuildDisk(g);
  Runtime runtime(disk.get(), SmallRuntimeOptions());
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);

  std::vector<std::uint64_t> reports;
  SessionOptions sopts;
  sopts.progress = [&reports](std::uint64_t embeddings) {
    reports.push_back(embeddings);
  };
  QuerySession session(&runtime, sopts);
  auto result = session.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_FALSE(reports.empty()) << "windows retired without progress";
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_LE(reports[i - 1], reports[i]) << "progress went backwards";
  }
  EXPECT_LE(reports.back(), result->embeddings);
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
}

}  // namespace
}  // namespace dualsim
