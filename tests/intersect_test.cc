#include "core/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/random.h"

namespace dualsim {
namespace {

TEST(IntersectTest, TwoWayBasics) {
  std::vector<VertexId> a = {1, 3, 5, 7};
  std::vector<VertexId> b = {2, 3, 5, 8};
  std::vector<VertexId> out;
  Intersect2(a, b, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 5}));
}

TEST(IntersectTest, TwoWayDisjoint) {
  std::vector<VertexId> a = {1, 2};
  std::vector<VertexId> b = {3, 4};
  std::vector<VertexId> out = {99};
  Intersect2(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, ManyWithSingleListCopies) {
  std::vector<VertexId> a = {4, 5, 6};
  std::span<const VertexId> lists[] = {a};
  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, a);
}

TEST(IntersectTest, ThreeWay) {
  std::vector<VertexId> a = {1, 2, 3, 4, 5};
  std::vector<VertexId> b = {2, 4, 6};
  std::vector<VertexId> c = {0, 2, 4, 8};
  std::span<const VertexId> lists[] = {a, b, c};
  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{2, 4}));
}

TEST(IntersectTest, EmptyInputs) {
  std::vector<VertexId> out = {7};
  IntersectMany({}, &out);
  EXPECT_TRUE(out.empty());
  std::vector<VertexId> a = {};
  std::vector<VertexId> b = {1};
  std::span<const VertexId> lists[] = {a, b};
  IntersectMany(lists, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, RandomizedAgainstSets) {
  Random rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<VertexId>> lists(2 + trial % 3);
    std::vector<std::set<VertexId>> sets(lists.size());
    for (std::size_t i = 0; i < lists.size(); ++i) {
      const std::size_t n = rng.Uniform(40);
      for (std::size_t j = 0; j < n; ++j) {
        sets[i].insert(static_cast<VertexId>(rng.Uniform(60)));
      }
      lists[i].assign(sets[i].begin(), sets[i].end());
    }
    std::set<VertexId> expected = sets[0];
    for (std::size_t i = 1; i < sets.size(); ++i) {
      std::set<VertexId> next;
      std::set_intersection(expected.begin(), expected.end(), sets[i].begin(),
                            sets[i].end(), std::inserter(next, next.end()));
      expected = next;
    }
    std::vector<std::span<const VertexId>> spans(lists.begin(), lists.end());
    std::vector<VertexId> out;
    IntersectMany(spans, &out);
    EXPECT_EQ(out, std::vector<VertexId>(expected.begin(), expected.end()));
  }
}

}  // namespace
}  // namespace dualsim
