#include "core/intersect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "testkit/metrics_util.h"
#include "util/random.h"

namespace dualsim {
namespace {

TEST(IntersectTest, TwoWayBasics) {
  std::vector<VertexId> a = {1, 3, 5, 7};
  std::vector<VertexId> b = {2, 3, 5, 8};
  std::vector<VertexId> out;
  Intersect2(a, b, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{3, 5}));
}

TEST(IntersectTest, TwoWayDisjoint) {
  std::vector<VertexId> a = {1, 2};
  std::vector<VertexId> b = {3, 4};
  std::vector<VertexId> out = {99};
  Intersect2(a, b, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, ManyWithSingleListCopies) {
  std::vector<VertexId> a = {4, 5, 6};
  std::span<const VertexId> lists[] = {a};
  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, a);
}

TEST(IntersectTest, ThreeWay) {
  std::vector<VertexId> a = {1, 2, 3, 4, 5};
  std::vector<VertexId> b = {2, 4, 6};
  std::vector<VertexId> c = {0, 2, 4, 8};
  std::span<const VertexId> lists[] = {a, b, c};
  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{2, 4}));
}

TEST(IntersectTest, EmptyInputs) {
  std::vector<VertexId> out = {7};
  IntersectMany({}, &out);
  EXPECT_TRUE(out.empty());
  std::vector<VertexId> a = {};
  std::vector<VertexId> b = {1};
  std::span<const VertexId> lists[] = {a, b};
  IntersectMany(lists, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, ManyWithTwoListsMatchesIntersect2) {
  std::vector<VertexId> a = {1, 3, 5, 7, 9};
  std::vector<VertexId> b = {2, 3, 7, 10};
  std::span<const VertexId> lists[] = {a, b};
  std::vector<VertexId> many;
  std::vector<VertexId> two;
  IntersectMany(lists, &many);
  Intersect2(a, b, &two);
  EXPECT_EQ(many, two);
  EXPECT_EQ(many, (std::vector<VertexId>{3, 7}));
}

TEST(IntersectTest, ManyEmptyListShortCircuits) {
  // Any empty input empties the intersection, wherever it sits — including
  // when a *later* list is empty and an earlier one is large.
  std::vector<VertexId> big(1000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<VertexId>(i);
  }
  std::vector<VertexId> empty;
  std::span<const VertexId> lists[] = {big, big, empty};
  std::vector<VertexId> out = {42};
  IntersectMany(lists, &out);
  EXPECT_TRUE(out.empty());

  std::span<const VertexId> lists_front[] = {empty, big, big};
  out = {42};
  IntersectMany(lists_front, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, ManyAllEmpty) {
  std::vector<VertexId> empty;
  std::span<const VertexId> lists[] = {empty, empty, empty};
  std::vector<VertexId> out = {1};
  IntersectMany(lists, &out);
  EXPECT_TRUE(out.empty());
}

TEST(IntersectTest, ManyDuplicateLists) {
  // The same list repeated intersects to itself.
  std::vector<VertexId> a = {2, 4, 6, 8};
  std::span<const VertexId> lists[] = {a, a, a, a};
  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, a);
}

TEST(IntersectTest, ManyAdversarialSizeSkew) {
  // One tiny list against several huge ones: the tiny list must drive the
  // scan, and the result is exactly its members present in all others.
  std::vector<VertexId> huge1;
  std::vector<VertexId> huge2;
  for (VertexId v = 0; v < 5000; ++v) {
    if (v % 2 == 0) huge1.push_back(v);
    if (v % 3 == 0) huge2.push_back(v);
  }
  std::vector<VertexId> tiny = {6, 7, 12, 4998};
  std::span<const VertexId> lists[] = {huge1, tiny, huge2};
  std::vector<VertexId> out;
  IntersectMany(lists, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{6, 12, 4998}));
}

TEST(IntersectTest, RandomizedAgainstSets) {
  Random rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::vector<VertexId>> lists(2 + trial % 3);
    std::vector<std::set<VertexId>> sets(lists.size());
    for (std::size_t i = 0; i < lists.size(); ++i) {
      const std::size_t n = rng.Uniform(40);
      for (std::size_t j = 0; j < n; ++j) {
        sets[i].insert(static_cast<VertexId>(rng.Uniform(60)));
      }
      lists[i].assign(sets[i].begin(), sets[i].end());
    }
    std::set<VertexId> expected = sets[0];
    for (std::size_t i = 1; i < sets.size(); ++i) {
      std::set<VertexId> next;
      std::set_intersection(expected.begin(), expected.end(), sets[i].begin(),
                            sets[i].end(), std::inserter(next, next.end()));
      expected = next;
    }
    std::vector<std::span<const VertexId>> spans(lists.begin(), lists.end());
    std::vector<VertexId> out;
    IntersectMany(spans, &out);
    EXPECT_EQ(out, std::vector<VertexId>(expected.begin(), expected.end()));
  }
}

/// Regression: every 2-way dispatch attributes exactly one per-kernel
/// counter, *including* the empty-input shortcut and the many-way path
/// whose smallest list is empty — both historically recorded
/// intersect.calls without any intersect.<kernel>.calls, so the per-kernel
/// counters no longer summed to the total.
TEST(IntersectTest, KernelCountersSumToCalls) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const std::vector<VertexId> empty;
  const std::vector<VertexId> a = {1, 2, 3};
  const std::vector<VertexId> b = {2, 3, 4};
  std::vector<VertexId> out;

  testkit::MetricsProbe probe;
  Intersect2(empty, a, &out);  // empty-input shortcut
  EXPECT_TRUE(out.empty());
  Intersect2(a, b, &out);  // normal path
  EXPECT_EQ(out, (std::vector<VertexId>{2, 3}));
  const std::span<const VertexId> lists[] = {a, empty, b};
  IntersectMany(lists, &out);  // many-way with an empty smallest list
  EXPECT_TRUE(out.empty());

  const std::uint64_t calls = probe.Delta("intersect.calls");
  std::uint64_t per_kernel = 0;
  for (const char* name :
       {"intersect.scalar.calls", "intersect.galloping.calls",
        "intersect.avx2.calls", "intersect.bitmap.calls"}) {
    per_kernel += probe.Delta(name);
  }
  EXPECT_EQ(calls, 3u);  // two 2-way + one pairwise step inside many-way
  EXPECT_EQ(per_kernel, calls)
      << "per-kernel counters must sum to intersect.calls";
  testkit::ExpectMetricDelta(probe, "intersect.many_calls", 1);
}

}  // namespace
}  // namespace dualsim
