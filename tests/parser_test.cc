#include "query/parser.h"

#include <gtest/gtest.h>

#include "query/queries.h"

namespace dualsim {
namespace {

TEST(ParserTest, EdgeListForms) {
  auto q = ParseQuery("0-1,1-2,2-0");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVertices(), 3u);
  EXPECT_EQ(q->NumEdges(), 3u);

  auto spaces = ParseQuery("0-1 1-2 2-3 3-0");
  ASSERT_TRUE(spaces.ok());
  EXPECT_EQ(spaces->NumEdges(), 4u);

  auto mixed = ParseQuery(" 0-1 , 1-2 ");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->NumEdges(), 2u);
}

TEST(ParserTest, NamedPaperQueries) {
  for (const char* name : {"q1", "q2", "q3", "q4", "q5"}) {
    auto q = ParseQuery(name);
    ASSERT_TRUE(q.ok()) << name;
  }
  EXPECT_EQ(ParseQuery("triangle")->NumEdges(), 3u);
  EXPECT_EQ(ParseQuery("square")->NumEdges(), 4u);
  EXPECT_EQ(ParseQuery("chordal-square")->NumEdges(), 5u);
  EXPECT_EQ(ParseQuery("4-clique")->NumEdges(), 6u);
  EXPECT_EQ(ParseQuery("house")->NumEdges(), 6u);
}

TEST(ParserTest, ParameterizedShapes) {
  EXPECT_EQ(ParseQuery("path4")->NumEdges(), 3u);
  EXPECT_EQ(ParseQuery("star3")->NumEdges(), 3u);
  EXPECT_EQ(ParseQuery("clique5")->NumEdges(), 10u);
  EXPECT_EQ(ParseQuery("cycle6")->NumEdges(), 6u);
}

TEST(ParserTest, RejectsBadInput) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("nonsense").ok());
  EXPECT_FALSE(ParseQuery("0-0").ok());           // self loop
  EXPECT_FALSE(ParseQuery("0-1,5-6").ok());       // disconnected
  EXPECT_FALSE(ParseQuery("0-99").ok());          // vertex id too large
  EXPECT_FALSE(ParseQuery("0-").ok());            // dangling edge
  EXPECT_FALSE(ParseQuery("a-b").ok());           // not numbers
  EXPECT_FALSE(ParseQuery("cycle2").ok());        // too small
  EXPECT_FALSE(ParseQuery("clique99").ok());      // too large
  EXPECT_FALSE(ParseQuery("path1").ok());
}

TEST(ParserTest, VertexCountFromMaxId) {
  auto q = ParseQuery("0-3,3-1,1-2,2-0");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->NumVertices(), 4u);
}

TEST(ParserTest, InlineLabelTokens) {
  auto q = ParseQuery("0-1,1-2,2-0,0=3,1=3");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->HasLabels());
  EXPECT_EQ(q->Label(0), 3);
  EXPECT_EQ(q->Label(1), 3);
  EXPECT_EQ(q->Label(2), kAnyLabel);  // unconstrained = wildcard

  // An unlabeled parse stays label-free entirely.
  auto plain = ParseQuery("0-1,1-2,2-0");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->HasLabels());
}

TEST(ParserTest, LabelSuffixNamesEveryVertex) {
  auto q = ParseQuery("triangle@1,2,*");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->NumVertices(), 3u);
  EXPECT_EQ(q->Label(0), 1);
  EXPECT_EQ(q->Label(1), 2);
  EXPECT_EQ(q->Label(2), kAnyLabel);

  // Works on edge lists too.
  auto el = ParseQuery("0-1,1-2@5,5,5");
  ASSERT_TRUE(el.ok()) << el.status().ToString();
  EXPECT_EQ(el->Label(2), 5);
}

TEST(ParserTest, RejectsBadLabels) {
  EXPECT_FALSE(ParseQuery("0-1,9=1").ok());        // label on unknown vertex
  EXPECT_FALSE(ParseQuery("triangle@1,2").ok());   // suffix misses a vertex
  EXPECT_FALSE(ParseQuery("triangle@1,2,3,4").ok());  // too many
  EXPECT_FALSE(ParseQuery("triangle@1,2,x").ok());    // not a label
  EXPECT_FALSE(ParseQuery("0-1@1,2@3,4").ok());       // multiple suffixes
  EXPECT_FALSE(ParseQuery("0-1,0=65535").ok());       // reserved (kAnyLabel)
}

}  // namespace
}  // namespace dualsim
