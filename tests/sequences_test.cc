#include "core/sequences.h"

#include <gtest/gtest.h>

#include "query/queries.h"

namespace dualsim {
namespace {

TEST(SequencesTest, NoOrdersGivesAllPermutations) {
  QueryGraph path = MakePathQuery(3);  // red graph stand-in
  auto seqs = EnumerateFullOrderSequences(path, {});
  EXPECT_EQ(seqs.size(), 6u);
}

TEST(SequencesTest, OrdersPrune) {
  QueryGraph path = MakePathQuery(3);
  // Paper Figure 1(b): with constraint u2 < u1 three of six sequences are
  // pruned.
  auto seqs = EnumerateFullOrderSequences(path, {{1, 0}});
  EXPECT_EQ(seqs.size(), 3u);
  for (const auto& qs : seqs) {
    std::size_t pos1 = 0;
    std::size_t pos0 = 0;
    for (std::size_t k = 0; k < qs.size(); ++k) {
      if (qs[k] == 1) pos1 = k;
      if (qs[k] == 0) pos0 = k;
    }
    EXPECT_LT(pos1, pos0);
  }
}

TEST(SequencesTest, FullChainLeavesOne) {
  QueryGraph k3 = MakeCliqueQuery(3);
  auto seqs = EnumerateFullOrderSequences(k3, {{0, 1}, {1, 2}, {0, 2}});
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], (FullOrderSequence{0, 1, 2}));
}

TEST(SequencesTest, GroupingByTopologyPathRedGraph) {
  // Red graph = path 0-1-2 with order 0 first (square's red graph):
  // sequences [0,1,2] and [0,2,1] have different positional topologies.
  QueryGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  auto seqs = EnumerateFullOrderSequences(path, {{0, 1}, {0, 2}});
  ASSERT_EQ(seqs.size(), 2u);
  auto groups = GroupSequencesByTopology(path, seqs);
  EXPECT_EQ(groups.size(), 2u);
}

TEST(SequencesTest, CliqueRedGraphIsOneGroup) {
  // In a clique red graph every permutation has identical positional
  // topology (complete), so all sequences collapse to one v-group.
  QueryGraph k3 = MakeCliqueQuery(3);
  auto seqs = EnumerateFullOrderSequences(k3, {});
  ASSERT_EQ(seqs.size(), 6u);
  auto groups = GroupSequencesByTopology(k3, seqs);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members.size(), 6u);
  EXPECT_TRUE(groups[0].PositionsAdjacent(0, 1));
  EXPECT_TRUE(groups[0].PositionsAdjacent(1, 2));
  EXPECT_TRUE(groups[0].PositionsAdjacent(0, 2));
}

TEST(SequencesTest, PaperFigure1SixSequencesTwoGroups) {
  // Figure 1(b): red graph path u2-u1... our local indexing: the red graph
  // of the house is a path r0-r1-r2 (0-3-2 in query ids, relabeled). With
  // no internal orders there are 6 sequences; with the house's actual
  // orders fewer. Check the no-order case matches the figure: 6 sequences,
  // and grouping by topology yields groups of sizes {1,2} pattern... the
  // figure's vgs1 has 1 member ([u3,u2,u1]-like chain) and vgs2 has 2.
  QueryGraph path(3);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  auto seqs = EnumerateFullOrderSequences(path, {});
  ASSERT_EQ(seqs.size(), 6u);
  auto groups = GroupSequencesByTopology(path, seqs);
  // Topologies: middle vertex at position 0, 1, or 2 => 3 groups.
  ASSERT_EQ(groups.size(), 3u);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.members.size();
  EXPECT_EQ(total, 6u);
}

TEST(SequencesTest, MembersShareLength) {
  QueryGraph k4 = MakeCliqueQuery(4);
  auto groups = GroupSequencesByTopology(
      k4, EnumerateFullOrderSequences(k4, {}));
  for (const auto& g : groups) {
    EXPECT_EQ(g.Length(), 4u);
    for (const auto& m : g.members) EXPECT_EQ(m.size(), 4u);
  }
}

}  // namespace
}  // namespace dualsim
