#include <gtest/gtest.h>

#include <filesystem>
#include <latch>
#include <unistd.h>

#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"
#include "storage/buffer_pool.h"
#include "storage/disk_graph.h"
#include "util/thread_pool.h"

namespace dualsim {
namespace {

/// Failure-injection tests: storage-level faults must surface as Status
/// errors (never crashes or hangs), and partially processed state must be
/// released cleanly.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_fault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(FaultInjectionTest, TruncatedDatabaseSurfacesIOError) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 800, 3));
  const std::string path = PathFor("g.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
  ASSERT_TRUE(disk.ok());

  // Chop off the second half of the database after opening: reads past the
  // new EOF fail mid-run.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);

  EngineOptions options;
  options.buffer_fraction = 0.2;
  options.num_threads = 2;
  DualSimEngine engine(disk->get(), options);
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  // The engine must remain usable after restoring the file.
  std::filesystem::resize_file(path, full_size);
  auto retry = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FaultInjectionTest, BufferPoolAsyncReadErrorReachesCallback) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 5));
  const std::string path = PathFor("b.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  std::filesystem::resize_file(path, 0);

  ThreadPool io(2);
  BufferPool pool(&(*disk)->file(), 4, &io);
  std::latch done(1);
  Status seen;
  pool.PinAsync(0, [&](Status s, PageId, const std::byte*) {
    seen = s;
    done.count_down();
  });
  done.wait();
  EXPECT_EQ(seen.code(), StatusCode::kIOError);
  // A failed load must not leak the frame.
  EXPECT_EQ(pool.AvailableFrames(), 4u);
}

TEST_F(FaultInjectionTest, MetaFileMissingAfterBuild) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 7));
  const std::string path = PathFor("c.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  std::filesystem::remove(path + ".meta");
  EXPECT_FALSE(DiskGraph::Open(path).ok());
}

TEST_F(FaultInjectionTest, CorruptMetaRejected) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 9));
  const std::string path = PathFor("d.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  // Stomp the magic.
  std::FILE* f = std::fopen((path + ".meta").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const char junk[8] = {0};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto opened = DiskGraph::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultInjectionTest, PageFileSizeMismatchRejected) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 11));
  const std::string path = PathFor("e.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  // Append garbage so the page count no longer matches the catalog.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  std::vector<char> junk(512, 'x');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  auto opened = DiskGraph::Open(path);
  ASSERT_FALSE(opened.ok());
}

}  // namespace
}  // namespace dualsim
