#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <latch>
#include <memory>
#include <thread>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"
#include "runtime/query_session.h"
#include "runtime/runtime.h"
#include "storage/buffer_pool.h"
#include "storage/disk_graph.h"
#include "storage/fault_injection.h"
#include "storage/page_file.h"
#include "util/thread_pool.h"

namespace dualsim {
namespace {

/// Failure-injection tests: storage-level faults must surface as Status
/// errors (never crashes or hangs), and partially processed state must be
/// released cleanly.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_fault_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(FaultInjectionTest, TruncatedDatabaseSurfacesIOError) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 800, 3));
  const std::string path = PathFor("g.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
  ASSERT_TRUE(disk.ok());

  // Chop off the second half of the database after opening: reads past the
  // new EOF fail mid-run.
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);

  EngineOptions options;
  options.buffer_fraction = 0.2;
  options.num_threads = 2;
  DualSimEngine engine(disk->get(), options);
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);

  // The engine must remain usable after restoring the file.
  std::filesystem::resize_file(path, full_size);
  auto retry = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST_F(FaultInjectionTest, BufferPoolAsyncReadErrorReachesCallback) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 5));
  const std::string path = PathFor("b.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  std::filesystem::resize_file(path, 0);

  ThreadPool io(2);
  BufferPool pool(&(*disk)->file(), 4, &io);
  std::latch done(1);
  Status seen;
  pool.PinAsync(0, [&](Status s, PageId, const std::byte*) {
    seen = s;
    done.count_down();
  });
  done.wait();
  EXPECT_EQ(seen.code(), StatusCode::kIOError);
  // A failed load must not leak the frame.
  EXPECT_EQ(pool.AvailableFrames(), 4u);
}

TEST_F(FaultInjectionTest, MetaFileMissingAfterBuild) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 7));
  const std::string path = PathFor("c.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  std::filesystem::remove(path + ".meta");
  EXPECT_FALSE(DiskGraph::Open(path).ok());
}

TEST_F(FaultInjectionTest, CorruptMetaRejected) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 9));
  const std::string path = PathFor("d.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  // Stomp the magic.
  std::FILE* f = std::fopen((path + ".meta").c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const char junk[8] = {0};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto opened = DiskGraph::Open(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FaultInjectionTest, PageFileSizeMismatchRejected) {
  Graph g = ReorderByDegree(ErdosRenyi(50, 150, 11));
  const std::string path = PathFor("e.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  // Append garbage so the page count no longer matches the catalog.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  std::vector<char> junk(512, 'x');
  std::fwrite(junk.data(), 1, junk.size(), f);
  std::fclose(f);
  auto opened = DiskGraph::Open(path);
  ASSERT_FALSE(opened.ok());
}

TEST_F(FaultInjectionTest, ScheduledTransientReadFailsThenRecovers) {
  const std::string path = PathFor("inj.db");
  auto injector = std::make_shared<FaultInjector>();
  injector->FailRead(/*page=*/1, /*nth=*/1, /*count=*/2);
  auto file = PageFile::Create(path, 256, injector);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> page(256, std::byte{0x5a});
  ASSERT_TRUE((*file)->WritePage(0, page.data()).ok());
  ASSERT_TRUE((*file)->WritePage(1, page.data()).ok());

  std::vector<std::byte> out(256);
  // Reads 1 and 2 of page 1 fail; read 3 succeeds — a transient error.
  EXPECT_EQ((*file)->ReadPage(1, out.data()).code(), StatusCode::kIOError);
  EXPECT_EQ((*file)->ReadPage(1, out.data()).code(), StatusCode::kIOError);
  EXPECT_TRUE((*file)->ReadPage(1, out.data()).ok());
  EXPECT_EQ(out, page);
  // Page 0 was never targeted.
  EXPECT_TRUE((*file)->ReadPage(0, out.data()).ok());
  EXPECT_EQ(injector->stats().read_faults, 2u);
  EXPECT_EQ(injector->stats().reads_seen, 4u);
}

TEST_F(FaultInjectionTest, ShortReadSurfacesAsIOError) {
  const std::string path = PathFor("short.db");
  auto injector = std::make_shared<FaultInjector>();
  injector->ShortRead(/*page=*/0, /*nth=*/1, /*bytes=*/100);
  auto file = PageFile::Create(path, 256, injector);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> page(256, std::byte{0x7f});
  ASSERT_TRUE((*file)->WritePage(0, page.data()).ok());

  std::vector<std::byte> out(256, std::byte{0});
  const Status short_read = (*file)->ReadPage(0, out.data());
  EXPECT_EQ(short_read.code(), StatusCode::kIOError);
  // The prefix was transferred before the fault, the tail was not.
  EXPECT_EQ(out[99], std::byte{0x7f});
  EXPECT_EQ(out[100], std::byte{0});
  EXPECT_EQ(injector->stats().short_reads, 1u);
  // The next read is whole again.
  EXPECT_TRUE((*file)->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST_F(FaultInjectionTest, InjectedLatencyIsObservable) {
  const std::string path = PathFor("lat.db");
  auto injector = std::make_shared<FaultInjector>();
  injector->DelayReads(FaultInjector::kAnyPage, /*latency_us=*/2000);
  auto file = PageFile::Create(path, 256, injector);
  ASSERT_TRUE(file.ok());
  std::vector<std::byte> page(256, std::byte{1});
  ASSERT_TRUE((*file)->WritePage(0, page.data()).ok());

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::byte> out(256);
  ASSERT_TRUE((*file)->ReadPage(0, out.data()).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000);
  EXPECT_EQ(injector->stats().delayed_accesses, 1u);
}

TEST_F(FaultInjectionTest, BufferPoolRetryAbsorbsTransientFaults) {
  Graph g = ReorderByDegree(ErdosRenyi(100, 400, 21));
  const std::string path = PathFor("retry.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto injector = std::make_shared<FaultInjector>();
  // First read of every page fails once; the retry path must absorb it.
  injector->FailRead(FaultInjector::kAnyPage, /*nth=*/1, /*count=*/1);
  auto disk = DiskGraph::Open(path, false, injector);
  ASSERT_TRUE(disk.ok());

  ThreadPool io(2);
  BufferPool pool(&(*disk)->file(), 8, &io);
  const std::byte* data = nullptr;
  const Status pinned = pool.Pin(0, &data);
  ASSERT_TRUE(pinned.ok()) << pinned.ToString();
  pool.Unpin(0);
  EXPECT_EQ(pool.stats().read_retries, 1u);
  EXPECT_EQ(pool.stats().failed_reads, 0u);

  // With retries disabled the same fault is fatal. (Counters survive
  // ClearFaults, so schedule against page 1's own first read rather than
  // the already-advanced global ordinal.)
  injector->ClearFaults();
  injector->FailRead(/*page=*/1, /*nth=*/1, /*count=*/1);
  BufferPoolOptions no_retry;
  no_retry.max_read_retries = 0;
  BufferPool strict(&(*disk)->file(), 8, &io, no_retry);
  const Status failed = strict.Pin(1, &data);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  EXPECT_EQ(strict.stats().failed_reads, 1u);
  EXPECT_EQ(strict.AvailableFrames(), 8u) << "failed pin leaked a frame";
}

TEST_F(FaultInjectionTest, CancelBeforeRunIsDeterministic) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 23));
  const std::string path = PathFor("cancel.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  Runtime runtime(disk->get(), RuntimeOptions{});
  QuerySession session(&runtime);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);

  session.Cancel();
  auto cancelled = session.Run(q);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kCancelled)
      << cancelled.status().ToString();

  // No frames leaked by the aborted run.
  {
    auto lease = runtime.Admit(1, 0);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(lease->pool()->AvailableFrames(), runtime.num_frames());
  }

  // The request was consumed: the session is usable again.
  EXPECT_FALSE(session.cancel_requested());
  auto rerun = session.Run(q);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->embeddings, CountOccurrences(g, q));
}

TEST_F(FaultInjectionTest, CancelMidRunDoesNotDisturbSibling) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 900, 29));
  const std::string path = PathFor("cancel2.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto injector = std::make_shared<FaultInjector>();
  // Slow every read down so the cancelled run is still in flight when the
  // request lands.
  injector->DelayReads(FaultInjector::kAnyPage, /*latency_us=*/1000);
  auto disk = DiskGraph::Open(path, false, injector);
  ASSERT_TRUE(disk.ok());

  RuntimeOptions ropts;
  ropts.num_threads = 2;
  Runtime runtime(disk->get(), ropts);
  SessionOptions sopts;
  sopts.max_frames = 64;  // both sessions fit side by side
  QuerySession victim(&runtime, sopts);
  QuerySession sibling(&runtime, sopts);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);
  const std::uint64_t want = CountOccurrences(g, q);

  StatusOr<EngineStats> victim_result = Status::Internal("not run");
  StatusOr<EngineStats> sibling_result = Status::Internal("not run");
  std::thread tv([&] { victim_result = victim.Run(q); });
  std::thread ts([&] { sibling_result = sibling.Run(q); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  victim.Cancel();
  tv.join();
  ts.join();

  // The sibling is never affected by the victim's cancellation.
  ASSERT_TRUE(sibling_result.ok()) << sibling_result.status().ToString();
  EXPECT_EQ(sibling_result->embeddings, want);

  // The victim either finished before the request landed (then it must be
  // exact) or stopped cleanly with kCancelled.
  if (victim_result.ok()) {
    EXPECT_EQ(victim_result->embeddings, want);
  } else {
    EXPECT_EQ(victim_result.status().code(), StatusCode::kCancelled)
        << victim_result.status().ToString();
  }

  // Whatever happened, no frames are leaked and the victim runs again.
  {
    auto lease = runtime.Admit(1, 0);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(lease->pool()->AvailableFrames(), runtime.num_frames());
  }
  injector->ClearFaults();
  auto rerun = victim.Run(q);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->embeddings, want);
}

TEST_F(FaultInjectionTest, PermanentFaultDoesNotHangConcurrentSiblings) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 31));
  const std::string path = PathFor("perm.db");
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto injector = std::make_shared<FaultInjector>();
  auto disk = DiskGraph::Open(path, false, injector);
  ASSERT_TRUE(disk.ok());

  RuntimeOptions ropts;
  ropts.num_threads = 2;
  Runtime runtime(disk->get(), ropts);
  SessionOptions sopts;
  sopts.max_frames = 64;
  QuerySession s1(&runtime, sopts);
  QuerySession s2(&runtime, sopts);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);
  const std::uint64_t want = CountOccurrences(g, q);

  // Warm nothing: the fault plan starts dead so both sessions race into
  // I/O, then every read fails permanently.
  injector->FailReadForever(FaultInjector::kAnyPage);
  StatusOr<EngineStats> r1 = Status::Internal("not run");
  StatusOr<EngineStats> r2 = Status::Internal("not run");
  std::thread t1([&] { r1 = s1.Run(q); });
  std::thread t2([&] { r2 = s2.Run(q); });
  t1.join();
  t2.join();
  // Both terminate (no hang) with a clean error.
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r2.status().code(), StatusCode::kIOError);

  // No leaked frames; the runtime serves both sessions after healing.
  {
    auto lease = runtime.Admit(1, 0);
    ASSERT_TRUE(lease.ok());
    EXPECT_EQ(lease->pool()->AvailableFrames(), runtime.num_frames());
  }
  injector->ClearFaults();
  auto h1 = s1.Run(q);
  auto h2 = s2.Run(q);
  ASSERT_TRUE(h1.ok()) << h1.status().ToString();
  ASSERT_TRUE(h2.ok()) << h2.status().ToString();
  EXPECT_EQ(h1->embeddings, want);
  EXPECT_EQ(h2->embeddings, want);
}

}  // namespace
}  // namespace dualsim
