/// Concurrent query sessions on one shared Runtime, cross-checked against
/// the in-memory bruteforce oracle. Built to run clean under
/// -fsanitize=thread (scripts/check_sanitizers.sh).

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "baseline/bruteforce.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/queries.h"
#include "runtime/query_session.h"
#include "runtime/runtime.h"
#include "storage/disk_graph.h"

namespace dualsim {
namespace {

class ConcurrencyTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_concurrency_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<DiskGraph> BuildDisk(const Graph& ordered,
                                       std::size_t page_size = 512) {
    const std::string path = (dir_ / "g.db").string();
    Status s = BuildDiskGraph(ordered, path, page_size);
    EXPECT_TRUE(s.ok()) << s.ToString();
    auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
    EXPECT_TRUE(disk.ok()) << disk.status().ToString();
    return std::move(*disk);
  }

  std::filesystem::path dir_;
};

TEST_F(ConcurrencyTestBase, TwoSessionsDifferentQueriesMatchOracle) {
  Graph g = ReorderByDegree(ErdosRenyi(300, 1500, 7));
  auto disk = BuildDisk(g);
  RuntimeOptions options;
  options.num_frames = 64;
  options.num_threads = 4;
  Runtime runtime(disk.get(), options);

  const QueryGraph q1 = MakePaperQuery(PaperQuery::kQ1);
  const QueryGraph q4 = MakePaperQuery(PaperQuery::kQ4);
  const std::uint64_t expect1 = CountOccurrences(g, q1);
  const std::uint64_t expect4 = CountOccurrences(g, q4);
  constexpr int kIterations = 4;

  // Capped quotas so both sessions fit in the pool side by side.
  SessionOptions capped;
  capped.max_frames = 24;

  auto run_loop = [&](const QueryGraph& q, std::uint64_t expect,
                      Status* failure) {
    QuerySession session(&runtime, capped);
    for (int i = 0; i < kIterations; ++i) {
      auto result = session.Run(q);
      if (!result.ok()) {
        *failure = result.status();
        return;
      }
      if (result->embeddings != expect) {
        *failure = Status::Internal(
            "count mismatch: got " + std::to_string(result->embeddings) +
            " want " + std::to_string(expect));
        return;
      }
    }
  };

  Status failure1, failure4;
  std::thread t1(run_loop, std::cref(q1), expect1, &failure1);
  std::thread t4(run_loop, std::cref(q4), expect4, &failure4);
  t1.join();
  t4.join();
  EXPECT_TRUE(failure1.ok()) << failure1.ToString();
  EXPECT_TRUE(failure4.ok()) << failure4.ToString();

  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.sessions_completed, 2u * kIterations);
  // Each query prepared once; every later run hit the shared plan cache.
  EXPECT_EQ(stats.plan_cache.misses, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 2u * (kIterations - 1));
}

TEST_F(ConcurrencyTestBase, ManySessionsHammerOneRuntime) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 900, 13));
  auto disk = BuildDisk(g);
  RuntimeOptions options;
  options.num_frames = 96;
  options.num_threads = 4;
  Runtime runtime(disk.get(), options);

  const std::vector<PaperQuery> queries = {
      PaperQuery::kQ1, PaperQuery::kQ2, PaperQuery::kQ3, PaperQuery::kQ1};
  std::vector<std::uint64_t> expect;
  for (PaperQuery pq : queries) {
    expect.push_back(CountOccurrences(g, MakePaperQuery(pq)));
  }

  // More sessions than can be admitted at once: later ones must queue on
  // the frame quota and still finish with correct counts.
  SessionOptions capped;
  capped.max_frames = 32;
  std::vector<Status> failures(queries.size());
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    threads.emplace_back([&, i] {
      QuerySession session(&runtime, capped);
      for (int iter = 0; iter < 3; ++iter) {
        auto result = session.Run(MakePaperQuery(queries[i]));
        if (!result.ok()) {
          failures[i] = result.status();
          return;
        }
        if (result->embeddings != expect[i]) {
          failures[i] = Status::Internal(
              "count mismatch: got " + std::to_string(result->embeddings) +
              " want " + std::to_string(expect[i]));
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < failures.size(); ++i) {
    EXPECT_TRUE(failures[i].ok()) << "session " << i << ": "
                                  << failures[i].ToString();
  }
  EXPECT_EQ(runtime.stats().sessions_completed, queries.size() * 3);
}

TEST_F(ConcurrencyTestBase, ConcurrentVisitorsSeeOnlyTheirOwnQuery) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 700, 21));
  auto disk = BuildDisk(g);
  RuntimeOptions options;
  options.num_frames = 64;
  options.num_threads = 4;
  Runtime runtime(disk.get(), options);

  const QueryGraph wedge = MakeStarQuery(2);
  const QueryGraph triangle = MakePaperQuery(PaperQuery::kQ1);

  auto run_with_visitor = [&](const QueryGraph& q, std::uint64_t* count,
                              Status* failure) {
    SessionOptions capped;
    capped.max_frames = 24;
    QuerySession session(&runtime, capped);
    std::atomic<std::uint64_t> bad{0};
    std::atomic<std::uint64_t> seen{0};
    auto result = session.Run(q, [&](std::span<const VertexId> m) {
      seen.fetch_add(1, std::memory_order_relaxed);
      if (m.size() != q.NumVertices()) {
        bad.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (QueryVertex u = 0; u < q.NumVertices(); ++u) {
        for (QueryVertex v = static_cast<QueryVertex>(u + 1);
             v < q.NumVertices(); ++v) {
          if (q.HasEdge(u, v) && !g.HasEdge(m[u], m[v])) {
            bad.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
    if (!result.ok()) {
      *failure = result.status();
      return;
    }
    if (bad.load() != 0) {
      *failure = Status::Internal(std::to_string(bad.load()) +
                                  " invalid embeddings delivered");
      return;
    }
    if (seen.load() != result->embeddings) {
      *failure = Status::Internal("visitor count != stats count");
      return;
    }
    *count = result->embeddings;
  };

  std::uint64_t wedge_count = 0, triangle_count = 0;
  Status wedge_failure, triangle_failure;
  std::thread tw(run_with_visitor, std::cref(wedge), &wedge_count,
                 &wedge_failure);
  std::thread tt(run_with_visitor, std::cref(triangle), &triangle_count,
                 &triangle_failure);
  tw.join();
  tt.join();
  ASSERT_TRUE(wedge_failure.ok()) << wedge_failure.ToString();
  ASSERT_TRUE(triangle_failure.ok()) << triangle_failure.ToString();
  EXPECT_EQ(wedge_count, CountOccurrences(g, wedge));
  EXPECT_EQ(triangle_count, CountOccurrences(g, triangle));
}

}  // namespace
}  // namespace dualsim
