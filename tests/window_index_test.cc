#include "core/window_index.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/page.h"

namespace dualsim {
namespace {

std::vector<std::byte> MakePage(
    std::size_t page_size,
    const std::vector<std::pair<VertexId, std::vector<VertexId>>>& records) {
  std::vector<std::byte> page(page_size);
  PageWriter writer(page.data(), page_size);
  for (const auto& [v, adj] : records) {
    EXPECT_TRUE(writer.Append(v, static_cast<std::uint32_t>(adj.size()), 0,
                              adj));
  }
  return page;
}

TEST(WindowIndexTest, FindResidentVertices) {
  auto page = MakePage(512, {{3, {1, 2}}, {5, {0}}, {9, {}}});
  WindowIndex index;
  index.AddPage(page.data(), 512);
  EXPECT_EQ(index.NumVertices(), 3u);
  bool found = false;
  auto adj = index.Find(5, &found);
  EXPECT_TRUE(found);
  ASSERT_EQ(adj.size(), 1u);
  EXPECT_EQ(adj[0], 0u);
  index.Find(4, &found);
  EXPECT_FALSE(found);
  EXPECT_TRUE(index.Contains(9));
  EXPECT_FALSE(index.Contains(10));
}

TEST(WindowIndexTest, MultiplePagesStaySorted) {
  auto page1 = MakePage(512, {{10, {1}}, {11, {2}}});
  auto page2 = MakePage(512, {{2, {7}}, {3, {8}}});
  WindowIndex index;
  index.AddPage(page1.data(), 512);
  index.AddPage(page2.data(), 512);  // out-of-order arrival
  const auto& entries = index.entries();
  ASSERT_EQ(entries.size(), 4u);
  for (std::size_t i = 0; i + 1 < entries.size(); ++i) {
    EXPECT_LT(entries[i].vertex, entries[i + 1].vertex);
  }
  EXPECT_TRUE(index.Contains(2));
  EXPECT_TRUE(index.Contains(11));
}

TEST(WindowIndexTest, ClearEmptiesIndex) {
  auto page = MakePage(256, {{1, {2}}});
  WindowIndex index;
  index.AddPage(page.data(), 256);
  index.Clear();
  EXPECT_EQ(index.NumVertices(), 0u);
  EXPECT_FALSE(index.Contains(1));
}

TEST(WindowIndexTest, EmptyIndexFindsNothing) {
  WindowIndex index;
  bool found = true;
  index.Find(0, &found);
  EXPECT_FALSE(found);
}

}  // namespace
}  // namespace dualsim
