#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>

namespace dualsim {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 7 * 6; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, RunsManyTasks) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Enqueue([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleCoversNestedEnqueues) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.Enqueue([&] {
    count.fetch_add(1);
    pool.Enqueue([&] {
      count.fetch_add(1);
      pool.Enqueue([&] { count.fetch_add(1); });
    });
  });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([] { return 1; });
  EXPECT_EQ(f.get(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&](std::size_t i) { hits[i].fetch_add(1); }, 10);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool touched = false;
  ParallelFor(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(TaskGroupTest, WaitCoversNestedRuns) {
  ThreadPool pool(4);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  group.Run([&] {
    count.fetch_add(1);
    group.Run([&] {
      count.fetch_add(1);
      group.Run([&] { count.fetch_add(1); });
    });
  });
  group.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(TaskGroupTest, WaitIgnoresOtherGroupsOnTheSamePool) {
  ThreadPool pool(4);
  TaskGroup slow(&pool);
  TaskGroup fast(&pool);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  // Two tasks of `slow` park on the gate; `fast` must still complete and
  // its Wait() must return without joining them.
  for (int i = 0; i < 2; ++i) slow.Run([gate] { gate.wait(); });
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) fast.Run([&] { count.fetch_add(1); });
  fast.Wait();
  EXPECT_EQ(count.load(), 100);
  release.set_value();
  slow.Wait();
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Enqueue([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    pool.WaitIdle();
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace dualsim
