/// Labeled golden-count regression suite (DESIGN.md §12): labeled queries
/// over deterministic labeled generator graphs, with the exact embedding
/// count pinned as a literal and cross-checked against the label-aware
/// brute-force oracle. Same triage contract as golden_counts_test.cc:
///   - engine != golden, oracle == golden  -> engine regression
///   - engine == golden, oracle != golden  -> oracle or generator drift
///   - both != golden                      -> generator/label drift
/// Any intentional change to the generators, the label assignment, or the
/// parser's label syntax must re-derive these numbers.
///
/// The suite also pins the *semantics* of labels end-to-end: every query
/// goes through ParseQuery (text syntax), the plan cache (label-aware
/// canonical forms), and the candidate filter (both on and off — the two
/// configurations must agree, since filtering is an optimization).

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "query/parser.h"
#include "storage/disk_graph.h"

namespace dualsim {
namespace {

/// Deterministic labeled fixture graphs: labels are assigned *after* the
/// degree reorder, so vertex ids here match the on-disk ids exactly.
/// Four labels with Zipf skew 1.0 — label 0 common, label 3 rare.
Graph MakeLabeledGraph(int id) {
  constexpr std::uint32_t kNumLabels = 4;
  switch (id) {
    case 0:
      return WithRandomLabels(ReorderByDegree(ErdosRenyi(200, 1000, 42)),
                              kNumLabels, 17);
    case 1:
      return WithRandomLabels(
          ReorderByDegree(RMat(8, 900, 0.57, 0.15, 0.15, 7)), kNumLabels, 23);
    default:
      return WithRandomLabels(ReorderByDegree(BarabasiAlbert(150, 3, 5)),
                              kNumLabels, 31);
  }
}

/// The labeled queries, in the CLI/wire text syntax. A mix of fully
/// labeled, partially labeled (wildcards), and rare-label selective
/// shapes; q5 uses the "@" suffix form to cover both syntaxes.
const char* const kLabeledQueries[] = {
    "0-1,1-2,2-0,0=0,1=0,2=0",      // triangle, all on the common label
    "0-1,1-2,2-0,0=0,1=1",          // triangle, mixed labels + wildcard
    "0-1,1-2,0=3,2=3",              // path P3, rare label at both ends
    "0-1,1-2,2-3,3-0,0=1,2=1",      // 4-cycle, alternating constraint
    "triangle@2,2,*",               // suffix syntax on a named shape
};

// Pinned counts per graph (rows: ER, RMat, BA) x query (columns as above).
constexpr std::uint64_t kGolden[3][5] = {
    /* ER   */ {19, 81, 168, 91, 8},
    /* RMat */ {58, 604, 71, 809, 15},
    /* BA   */ {6, 29, 118, 9, 3},
};

struct LabeledCase {
  const char* graph_name;
  int graph_id;
  int query_id;
  std::uint64_t golden;
  bool candidate_filter;
};

std::vector<LabeledCase> AllLabeledCases() {
  const char* names[] = {"ER", "RMat", "BA"};
  std::vector<LabeledCase> cases;
  for (bool filter : {true, false}) {
    for (int graph = 0; graph < 3; ++graph) {
      for (int query = 0; query < 5; ++query) {
        cases.push_back(
            {names[graph], graph, query, kGolden[graph][query], filter});
      }
    }
  }
  return cases;
}

std::string LabeledName(const ::testing::TestParamInfo<LabeledCase>& info) {
  return std::string(info.param.graph_name) + "q" +
         std::to_string(info.param.query_id + 1) +
         (info.param.candidate_filter ? "" : "_nofilter");
}

class LabeledGoldenTest : public ::testing::TestWithParam<LabeledCase> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_labeled_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_P(LabeledGoldenTest, EngineAndOracleMatchPinnedCount) {
  const LabeledCase& param = GetParam();
  Graph g = MakeLabeledGraph(param.graph_id);
  ASSERT_TRUE(g.HasLabels());
  auto q = ParseQuery(kLabeledQueries[param.query_id]);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->HasLabels());

  // Oracle first (filter-independent, so checked once per graph x query).
  if (param.candidate_filter) {
    EXPECT_EQ(CountOccurrences(g, *q), param.golden)
        << "label-aware oracle disagrees with the pinned golden count";
  }

  const std::string path = (dir_ / "g.db").string();
  Status s = BuildDiskGraph(g, path, /*page_size=*/512);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  ASSERT_TRUE((*disk)->HasLabels());

  EngineOptions options;
  options.buffer_fraction = 0.2;
  options.num_threads = 4;
  options.candidate_filter = param.candidate_filter;
  DualSimEngine engine(disk->get(), options);
  auto result = engine.Run(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, param.golden)
      << "engine disagrees with the pinned golden count (candidate_filter="
      << (param.candidate_filter ? "on" : "off") << ")";
}

INSTANTIATE_TEST_SUITE_P(LabeledQueries, LabeledGoldenTest,
                         ::testing::ValuesIn(AllLabeledCases()), LabeledName);

/// An unlabeled query over a labeled graph ignores labels entirely: it
/// must count exactly what the unlabeled oracle counts.
TEST(LabeledGoldenTest, WildcardQueryIgnoresLabels) {
  Graph g = MakeLabeledGraph(0);
  auto q = ParseQuery("triangle");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->HasLabels());

  const auto dir = std::filesystem::temp_directory_path() /
                   ("dualsim_labeled_wild_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "g.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();

  DualSimEngine engine(disk->get());
  auto result = engine.Run(*q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g, *q));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dualsim
