#include "core/plan.h"

#include <gtest/gtest.h>

#include "query/queries.h"

namespace dualsim {
namespace {

TEST(PlanTest, RejectsEmptyAndDisconnected) {
  EXPECT_FALSE(PreparePlan(QueryGraph(0)).ok());
  QueryGraph disconnected(4);
  disconnected.AddEdge(0, 1);
  disconnected.AddEdge(2, 3);
  EXPECT_FALSE(PreparePlan(disconnected).ok());
}

TEST(PlanTest, TrianglePlanShape) {
  auto plan = PreparePlan(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumLevels(), 2u);
  EXPECT_EQ(plan->groups.size(), 1u);
  EXPECT_EQ(plan->groups[0].members.size(), 1u);  // full chain of orders
  EXPECT_EQ(plan->nonred_order.size(), 1u);
}

TEST(PlanTest, SquarePlanCollapsesToOneGroup) {
  // Rule 1 picks the MCVC {u0,u1,u3}, which internalizes three partial
  // orders; the full-order sequences collapse to a single one, so there is
  // one v-group and no Cartesian product. (This is exactly the point of
  // Rule 1: internal partial orders prune full-order sequences.)
  auto plan = PreparePlan(MakePaperQuery(PaperQuery::kQ2));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->NumLevels(), 3u);
  EXPECT_EQ(plan->groups.size(), 1u);
  EXPECT_EQ(plan->groups[0].members.size(), 1u);
  EXPECT_EQ(CountCartesianProducts(plan->groups, plan->matching_order), 0);
}

TEST(PlanTest, SquareWithoutRulesHasMoreSequences) {
  // Disabling Rules 1/2 falls back to the first MCVC in subset order,
  // which internalizes fewer orders and yields more full-order sequences.
  PlanOptions options;
  options.rbi.apply_rules = false;
  auto plan = PreparePlan(MakePaperQuery(PaperQuery::kQ2), options);
  ASSERT_TRUE(plan.ok());
  std::size_t total = 0;
  for (const auto& g : plan->groups) total += g.members.size();
  EXPECT_GT(total, 1u);
}

TEST(PlanTest, ExternalOrderStartsAtLastLevel) {
  for (PaperQuery pq : AllPaperQueries()) {
    auto plan = PreparePlan(MakePaperQuery(pq));
    ASSERT_TRUE(plan.ok()) << PaperQueryName(pq);
    for (const auto& order : plan->external_level_order) {
      ASSERT_FALSE(order.empty());
      EXPECT_EQ(order[0], plan->NumLevels() - 1) << PaperQueryName(pq);
      // Must be a permutation of levels.
      std::vector<bool> seen(plan->NumLevels(), false);
      for (auto l : order) seen[l] = true;
      for (bool s : seen) EXPECT_TRUE(s);
    }
    for (const auto& order : plan->internal_level_order) {
      EXPECT_EQ(order[0], 0u);
    }
  }
}

TEST(PlanTest, PreparationIsFast) {
  // Table 6: preparation takes at most ~1 msec per query. Allow slack for
  // debug builds and CI noise but verify it is not doing silly work.
  for (PaperQuery pq : AllPaperQueries()) {
    auto plan = PreparePlan(MakePaperQuery(pq));
    ASSERT_TRUE(plan.ok());
    EXPECT_LT(plan->prepare_millis, 50.0) << PaperQueryName(pq);
  }
}

TEST(PlanTest, NoVGroupAblationExplodesGroups) {
  PlanOptions options;
  options.use_vgroups = false;
  auto with = PreparePlan(MakePaperQuery(PaperQuery::kQ5));
  auto without = PreparePlan(MakePaperQuery(PaperQuery::kQ5), options);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_GE(without->groups.size(), with->groups.size());
  for (const auto& g : without->groups) EXPECT_EQ(g.members.size(), 1u);
  // Same number of sequences overall.
  std::size_t with_total = 0;
  for (const auto& g : with->groups) with_total += g.members.size();
  EXPECT_EQ(without->groups.size(), with_total);
}

TEST(PlanTest, WorstOrderAblationNotBetter) {
  PlanOptions worst;
  worst.best_matching_order = false;
  auto best_plan = PreparePlan(MakePaperQuery(PaperQuery::kQ2));
  auto worst_plan = PreparePlan(MakePaperQuery(PaperQuery::kQ2), worst);
  ASSERT_TRUE(best_plan.ok());
  ASSERT_TRUE(worst_plan.ok());
  EXPECT_GE(
      CountCartesianProducts(worst_plan->groups, worst_plan->matching_order),
      CountCartesianProducts(best_plan->groups, best_plan->matching_order));
}

TEST(PlanTest, ForestsMatchGroups) {
  auto plan = PreparePlan(MakePaperQuery(PaperQuery::kQ4));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->forests.size(), plan->groups.size());
  for (const auto& f : plan->forests) {
    EXPECT_EQ(f.parent_level.size(), plan->NumLevels());
    EXPECT_EQ(f.parent_level[0], -1);
  }
}

}  // namespace
}  // namespace dualsim
