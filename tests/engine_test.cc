#include "core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <mutex>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "obs/metrics.h"
#include "query/queries.h"
#include "query/symmetry_breaking.h"
#include "storage/disk_graph.h"
#include "testkit/metrics_util.h"

namespace dualsim {
namespace {

/// Builds a disk database for `g` (degree-reordered first) and returns the
/// opened handle. Files live in a per-process temp dir cleaned at exit.
class EngineTestBase : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_engine_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::unique_ptr<DiskGraph> BuildDisk(const Graph& ordered,
                                       std::size_t page_size = 512) {
    const std::string path = (dir_ / "g.db").string();
    Status s = BuildDiskGraph(ordered, path, page_size);
    EXPECT_TRUE(s.ok()) << s.ToString();
    auto disk = DiskGraph::Open(path, /*bypass_os_cache=*/false);
    EXPECT_TRUE(disk.ok()) << disk.status().ToString();
    return std::move(*disk);
  }

  std::filesystem::path dir_;
};

EngineOptions SmallOptions() {
  EngineOptions options;
  options.buffer_fraction = 0.3;
  options.num_threads = 4;
  return options;
}

TEST_F(EngineTestBase, TriangleCountMatchesOracleOnRandomGraph) {
  Graph g = ReorderByDegree(ErdosRenyi(300, 1500, 7));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings,
            CountOccurrences(g, MakePaperQuery(PaperQuery::kQ1)));
  EXPECT_GT(result->io.physical_reads, 0u);
}

TEST_F(EngineTestBase, InternalPlusExternalEqualsTotal) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 3));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embeddings,
            result->internal_embeddings + result->external_embeddings);
  // With a 30% buffer both passes should contribute.
  EXPECT_GT(result->internal_embeddings, 0u);
  EXPECT_GT(result->external_embeddings, 0u);
}

TEST_F(EngineTestBase, VisitorReceivesValidDistinctEmbeddings) {
  Graph g = ReorderByDegree(ErdosRenyi(120, 500, 9));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);
  const auto orders = FindPartialOrders(q);
  std::mutex mu;
  std::vector<std::vector<VertexId>> seen;
  auto result = engine.Run(q, [&](std::span<const VertexId> m) {
    std::lock_guard<std::mutex> lock(mu);
    seen.emplace_back(m.begin(), m.end());
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embeddings, seen.size());
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end())
      << "duplicate embeddings";
  for (const auto& m : seen) {
    EXPECT_TRUE(SatisfiesPartialOrders(orders, m));
    for (QueryVertex u = 0; u < q.NumVertices(); ++u) {
      for (QueryVertex v = static_cast<QueryVertex>(u + 1);
           v < q.NumVertices(); ++v) {
        if (q.HasEdge(u, v)) EXPECT_TRUE(g.HasEdge(m[u], m[v]));
      }
    }
  }
}

TEST_F(EngineTestBase, MultiPageAdjacencyListsSupported) {
  // The hub's adjacency list spans many 128-byte pages (the paper's §5.2
  // large-degree case); the engine stitches the sublists and must still
  // match the oracle.
  Graph g = ReorderByDegree(Star(300));
  auto disk = BuildDisk(g, /*page_size=*/128);
  EXPECT_FALSE(disk->AllSinglePage());
  EXPECT_GT(disk->MaxVertexPages(), 1u);
  DualSimEngine engine(disk.get(), SmallOptions());
  const QueryGraph q = MakeStarQuery(2);  // wedges through the hub
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
}

TEST_F(EngineTestBase, MultiPageSkewedGraphMatchesOracle) {
  // Skewed graph with several multi-page hubs under a tiny page size and
  // tiny buffer: exercises window extension, orphan tails, and last-level
  // run dispatch for every paper query.
  Graph g = ReorderByDegree(RMat(8, 1200, 0.65, 0.12, 0.12, 77));
  auto disk = BuildDisk(g, /*page_size=*/128);
  EXPECT_FALSE(disk->AllSinglePage());
  EngineOptions options;
  options.buffer_fraction = 0.1;
  options.num_threads = 3;
  DualSimEngine engine(disk.get(), options);
  for (PaperQuery pq : AllPaperQueries()) {
    const QueryGraph q = MakePaperQuery(pq);
    auto result = engine.Run(q);
    ASSERT_TRUE(result.ok())
        << PaperQueryName(pq) << ": " << result.status().ToString();
    EXPECT_EQ(result->embeddings, CountOccurrences(g, q))
        << PaperQueryName(pq);
  }
}

TEST_F(EngineTestBase, CliqueCountsOnCompleteGraph) {
  Graph g = ReorderByDegree(Complete(20));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  auto q4 = engine.Run(MakePaperQuery(PaperQuery::kQ4));
  ASSERT_TRUE(q4.ok());
  EXPECT_EQ(q4->embeddings, 4845u);  // C(20,4)
}

TEST_F(EngineTestBase, BipartiteGraphHasNoCliques) {
  Graph g = ReorderByDegree(BipartitePowerLaw(100, 100, 600, 2));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embeddings, 0u);
}

TEST_F(EngineTestBase, StarQuerySingleRedVertex) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 4));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  const QueryGraph q = MakeStarQuery(3);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
  EXPECT_EQ(result->external_embeddings, 0u);  // one level => internal only
}

TEST_F(EngineTestBase, EdgeQueryCountsEdges) {
  Graph g = ReorderByDegree(ErdosRenyi(100, 321, 6));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  auto result = engine.Run(MakePathQuery(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embeddings, g.NumEdges());
}

TEST_F(EngineTestBase, FrameBudgetsPaperStrategy) {
  // 3 levels, 100 frames, 4 threads: last = 8, first = 2/3 of 92 = 61,
  // middle = the rest.
  auto budgets = DualSimEngine::ComputeFrameBudgets(3, 100, 4, true);
  ASSERT_EQ(budgets.size(), 3u);
  EXPECT_EQ(budgets[2], 8u);
  EXPECT_EQ(budgets[0], 61u);
  EXPECT_GE(budgets[1], 1u);
  // Equal split ablation.
  auto equal = DualSimEngine::ComputeFrameBudgets(3, 99, 4, false);
  EXPECT_EQ(equal[0], 33u);
  EXPECT_EQ(equal[1], 33u);
  EXPECT_EQ(equal[2], 33u);
  // Triangulation case: all remaining frames to level 0 (paper §5).
  auto two = DualSimEngine::ComputeFrameBudgets(2, 50, 4, true);
  EXPECT_EQ(two[1], 8u);
  EXPECT_EQ(two[0], 42u);
}

// ---------------------------------------------------------------------------
// Property sweep: every paper query on a matrix of graphs must match the
// brute-force oracle exactly, under a tiny buffer to force heavy paging.
// ---------------------------------------------------------------------------

struct SweepCase {
  const char* graph_name;
  int graph_id;
  PaperQuery query;
};

std::string SweepName(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.graph_name) +
         PaperQueryName(info.param.query);
}

Graph MakeSweepGraph(int id) {
  switch (id) {
    case 0:
      return ErdosRenyi(150, 600, 11);
    case 1:
      return RMat(8, 900, 0.6, 0.15, 0.15, 13);  // skewed hubs
    case 2:
      return Complete(12);
    case 3:
      return BipartitePowerLaw(60, 70, 400, 17);
    case 4:
      return Cycle(50);
    default:
      return Star(40);
  }
}

class EngineSweepTest : public EngineTestBase,
                        public ::testing::WithParamInterface<SweepCase> {};

TEST_P(EngineSweepTest, MatchesOracle) {
  const SweepCase& param = GetParam();
  Graph g = ReorderByDegree(MakeSweepGraph(param.graph_id));
  auto disk = BuildDisk(g, /*page_size=*/512);
  EngineOptions options;
  options.buffer_fraction = 0.15;  // paper default; forces real paging
  options.num_threads = 4;
  DualSimEngine engine(disk.get(), options);
  const QueryGraph q = MakePaperQuery(param.query);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
}

std::vector<SweepCase> AllSweepCases() {
  std::vector<SweepCase> cases;
  const char* names[] = {"ER", "RMat", "K12", "Bip", "C50", "Star"};
  for (int graph = 0; graph < 6; ++graph) {
    for (PaperQuery pq : AllPaperQueries()) {
      cases.push_back({names[graph], graph, pq});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllGraphsAllQueries, EngineSweepTest,
                         ::testing::ValuesIn(AllSweepCases()), SweepName);

// ---------------------------------------------------------------------------
// Robustness sweeps: buffer sizes, thread counts, page sizes, plan ablations
// must never change the answer.
// ---------------------------------------------------------------------------

class EngineBufferSweepTest : public EngineTestBase,
                              public ::testing::WithParamInterface<double> {};

TEST_P(EngineBufferSweepTest, CountInvariantUnderBufferSize) {
  Graph g = ReorderByDegree(RMat(8, 800, 0.55, 0.15, 0.15, 23));
  auto disk = BuildDisk(g);
  EngineOptions options;
  options.buffer_fraction = GetParam();
  options.num_threads = 4;
  DualSimEngine engine(disk.get(), options);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ4);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, EngineBufferSweepTest,
                         ::testing::Values(0.05, 0.10, 0.15, 0.20, 0.25));

class EngineThreadSweepTest : public EngineTestBase,
                              public ::testing::WithParamInterface<int> {};

TEST_P(EngineThreadSweepTest, CountInvariantUnderThreads) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 900, 31));
  auto disk = BuildDisk(g);
  EngineOptions options;
  options.num_threads = GetParam();
  options.buffer_fraction = 0.2;
  DualSimEngine engine(disk.get(), options);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ5);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
}

INSTANTIATE_TEST_SUITE_P(Threads, EngineThreadSweepTest,
                         ::testing::Values(1, 2, 3, 6));

TEST_F(EngineTestBase, AblationsPreserveCounts) {
  Graph g = ReorderByDegree(RMat(7, 500, 0.6, 0.15, 0.15, 37));
  auto disk = BuildDisk(g);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ2);
  const std::uint64_t want = CountOccurrences(g, q);

  for (bool vgroups : {true, false}) {
    for (bool best_order : {true, false}) {
      for (bool paper_alloc : {true, false}) {
        EngineOptions options = SmallOptions();
        options.plan.use_vgroups = vgroups;
        options.plan.best_matching_order = best_order;
        options.paper_buffer_allocation = paper_alloc;
        DualSimEngine engine(disk.get(), options);
        auto result = engine.Run(q);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result->embeddings, want)
            << "vgroups=" << vgroups << " best_order=" << best_order
            << " paper_alloc=" << paper_alloc;
      }
    }
  }
}

TEST_F(EngineTestBase, MvcAblationPreservesCounts) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 700, 41));
  auto disk = BuildDisk(g);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ2);
  EngineOptions options = SmallOptions();
  options.plan.rbi.use_connected_cover = false;  // MVC instead of MCVC
  DualSimEngine engine(disk.get(), options);
  auto result = engine.Run(q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->embeddings, CountOccurrences(g, q));
}

TEST_F(EngineTestBase, SimulatedDeviceLatencyOnlySlowsIo) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 53));
  auto disk = BuildDisk(g);
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ1);

  EngineOptions fast = SmallOptions();
  DualSimEngine fast_engine(disk.get(), fast);
  auto baseline = fast_engine.Run(q);
  ASSERT_TRUE(baseline.ok());

  // Large enough that the first window's reads — which gate all compute —
  // add more wall time than parallel-ctest scheduling noise ever does.
  EngineOptions slow = SmallOptions();
  slow.read_latency_us = 20'000;
  DualSimEngine slow_engine(disk.get(), slow);
  auto delayed = slow_engine.Run(q);
  ASSERT_TRUE(delayed.ok());

  EXPECT_EQ(delayed->embeddings, baseline->embeddings);
  // Read counts can vary by a handful across runs (async arrival order
  // shifts which residual pages the LRU evicts), but not systematically.
  const double reads_a = static_cast<double>(baseline->io.physical_reads);
  const double reads_b = static_cast<double>(delayed->io.physical_reads);
  EXPECT_NEAR(reads_b, reads_a, 0.2 * reads_a + 4);
  // Compare best-of-3 wall clocks: a single un-delayed run can lose a
  // few ms to scheduling when parallel ctest load deschedules it.
  double best_fast = baseline->elapsed_seconds;
  double best_slow = delayed->elapsed_seconds;
  for (int rep = 0; rep < 2; ++rep) {
    auto f = fast_engine.Run(q);
    ASSERT_TRUE(f.ok());
    best_fast = std::min(best_fast, f->elapsed_seconds);
    auto s = slow_engine.Run(q);
    ASSERT_TRUE(s.ok());
    best_slow = std::min(best_slow, s->elapsed_seconds);
  }
  EXPECT_GE(best_slow, 0.02);  // at least one gating read was delayed
  EXPECT_GT(best_slow, best_fast);
}

TEST_F(EngineTestBase, LevelStatsAreConsistent) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 900, 51));
  auto disk = BuildDisk(g);
  EngineOptions options;
  options.buffer_fraction = 0.15;
  options.num_threads = 2;
  DualSimEngine engine(disk.get(), options);
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ4));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->level_stats.size(), 3u);
  std::uint64_t owned = 0;
  for (const LevelStats& ls : result->level_stats) {
    EXPECT_GT(ls.windows, 0u);
    owned += ls.owned_pages;
  }
  // Level-0 covers the whole database exactly once per its own windows.
  EXPECT_EQ(result->level_stats[0].owned_pages, disk->num_pages());
  EXPECT_EQ(result->level_stats[0].borrowed_pages, 0u);
  // Deeper levels re-read pages: owned across levels exceeds the database.
  EXPECT_GT(owned, static_cast<std::uint64_t>(disk->num_pages()));
  // Physical reads can't exceed total pages touched (hits fill the rest).
  EXPECT_LE(result->io.physical_reads,
            owned + result->level_stats[1].borrowed_pages +
                result->level_stats[2].borrowed_pages);
}

// ---------------------------------------------------------------------------
// Metric invariants: the observability counters must agree with the
// engine's own accounting, not merely move in the right direction.
// ---------------------------------------------------------------------------

TEST_F(EngineTestBase, BufferMetricsClassifyEveryLookup) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 19));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  testkit::MetricsProbe probe;
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ2));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  const std::uint64_t lookups = probe.Delta("bufferpool.lookups");
  const std::uint64_t hits = probe.Delta("bufferpool.hits");
  const std::uint64_t misses = probe.Delta("bufferpool.misses");
  const std::uint64_t starved = probe.Delta("bufferpool.starved");
  EXPECT_GT(lookups, 0u);
  EXPECT_GT(misses, 0u);
  // Every Pin/PinAsync is classified exactly once.
  EXPECT_EQ(lookups, hits + misses + starved);
  // Every miss initiates at least one page-file read (retries add more).
  EXPECT_GE(probe.Delta("pagefile.reads"), misses);
}

TEST_F(EngineTestBase, EmbeddingMetricsMatchReturnedCounts) {
  Graph g = ReorderByDegree(ErdosRenyi(200, 1000, 3));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  testkit::MetricsProbe probe;
  auto result = engine.Run(MakePaperQuery(PaperQuery::kQ1));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  EXPECT_EQ(probe.Delta("match.embeddings_internal"),
            result->internal_embeddings);
  EXPECT_EQ(probe.Delta("match.embeddings_external"),
            result->external_embeddings);
  EXPECT_EQ(probe.Delta("match.embeddings_internal") +
                probe.Delta("match.embeddings_external"),
            result->embeddings);
  // Window accounting agrees with the per-level stats the engine returns.
  std::uint64_t windows = 0;
  for (const LevelStats& ls : result->level_stats) windows += ls.windows;
  EXPECT_EQ(probe.Delta("scheduler.windows"), windows);
}

TEST_F(EngineTestBase, RepeatedRunsAreDeterministic) {
  Graph g = ReorderByDegree(ErdosRenyi(150, 600, 43));
  auto disk = BuildDisk(g);
  DualSimEngine engine(disk.get(), SmallOptions());
  const QueryGraph q = MakePaperQuery(PaperQuery::kQ3);
  auto first = engine.Run(q);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 3; ++i) {
    auto again = engine.Run(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->embeddings, first->embeddings);
  }
}

}  // namespace
}  // namespace dualsim
