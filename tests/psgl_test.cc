#include "baseline/psgl.h"

#include <gtest/gtest.h>

#include "baseline/bruteforce.h"
#include "graph/generators.h"
#include "query/queries.h"

namespace dualsim {
namespace {

TEST(PsglTest, FinalCountMatchesOracle) {
  Graph g = ErdosRenyi(120, 500, 29);
  for (PaperQuery pq : AllPaperQueries()) {
    QueryGraph q = MakePaperQuery(pq);
    auto result = RunPsgl(g, q);
    ASSERT_TRUE(result.ok()) << PaperQueryName(pq);
    ASSERT_FALSE(result->failed) << result->failure_reason;
    EXPECT_EQ(result->final_results, CountOccurrences(g, q))
        << PaperQueryName(pq);
  }
}

TEST(PsglTest, LevelSizesRecorded) {
  Graph g = ErdosRenyi(100, 400, 31);
  auto result = RunPsgl(g, MakePaperQuery(PaperQuery::kQ4));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->level_sizes.size(), 4u);
  EXPECT_EQ(result->level_sizes.back(), result->final_results);
  std::uint64_t inter = 0;
  for (std::size_t i = 0; i + 1 < result->level_sizes.size(); ++i) {
    inter += result->level_sizes[i];
  }
  EXPECT_EQ(inter, result->intermediate_results);
}

TEST(PsglTest, PartialSolutionsGrowWithQuerySize) {
  // The paper's core criticism: partial solutions grow (roughly
  // exponentially) with the number of query vertices.
  Graph g = RMat(9, 2500, 0.57, 0.19, 0.19, 33);
  auto q1 = RunPsgl(g, MakePaperQuery(PaperQuery::kQ1));
  auto q5 = RunPsgl(g, MakePaperQuery(PaperQuery::kQ5));
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q5.ok());
  ASSERT_FALSE(q1->failed);
  ASSERT_FALSE(q5->failed);
  EXPECT_GT(q5->intermediate_results, q1->intermediate_results);
}

TEST(PsglTest, MemoryBudgetCausesOom) {
  Graph g = RMat(9, 2500, 0.57, 0.19, 0.19, 33);
  PsglOptions options;
  options.memory_budget_partials = 50;
  auto result = RunPsgl(g, MakePaperQuery(PaperQuery::kQ2), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->failed);
  EXPECT_NE(result->failure_reason.find("out of memory"), std::string::npos);
}

TEST(PsglTest, RejectsDisconnectedQuery) {
  QueryGraph q(4);
  q.AddEdge(0, 1);
  q.AddEdge(2, 3);
  EXPECT_FALSE(RunPsgl(ErdosRenyi(10, 20, 1), q).ok());
}

TEST(PsglTest, NoMatchesOnBipartiteClique) {
  Graph g = BipartitePowerLaw(50, 50, 300, 7);
  auto result = RunPsgl(g, MakePaperQuery(PaperQuery::kQ4));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->failed);
  EXPECT_EQ(result->final_results, 0u);
}

}  // namespace
}  // namespace dualsim
