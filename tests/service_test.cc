/// Loopback integration suite for the query service: concurrent clients
/// against the deterministic ER generator graph with every returned count
/// cross-checked against the pinned golden value, typed rejection paths
/// (OVERLOADED, SHUTTING_DOWN, INVALID_QUERY), deadline expiry, client
/// cancellation, graceful drain, protocol-error handling, and the
/// admission-ledger / service.* metric invariants.

#include "service/query_service.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.h"
#include "graph/reorder.h"
#include "runtime/runtime.h"
#include "service/client.h"
#include "service/protocol.h"
#include "storage/disk_graph.h"
#include "testkit/metrics_util.h"

namespace dualsim::service {
namespace {

using testkit::ExpectMetricDelta;
using testkit::MetricsProbe;

/// Pinned golden counts for q1..q5 over ReorderByDegree(ErdosRenyi(200,
/// 1000, 42)) — same fixture row as golden_counts_test.cc.
constexpr std::uint64_t kGoldenER[5] = {151, 1076, 90, 0, 2024};

/// Blocks every request inside the service's on_request_start hook until
/// Release(); lets tests hold a worker to provoke queueing, overload,
/// queued-deadline-expiry, and drain paths deterministically.
class RequestGate {
 public:
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }

  void AwaitEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n] { return entered_ >= n; });
  }

  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool released_ = false;
};

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_service_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
    graph_ = ReorderByDegree(ErdosRenyi(200, 1000, 42));
    const std::string path = (dir_ / "g.db").string();
    ASSERT_TRUE(BuildDiskGraph(graph_, path, /*page_size=*/512).ok());
    auto disk = OpenServedGraph(path);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    disk_ = std::move(*disk);
  }

  void TearDown() override {
    service_.reset();  // Stop() before the runtime and the disk graph die
    runtime_.reset();
    disk_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// An explicit frame budget several sessions fit into side by side, so
  /// concurrent workers run truly concurrently instead of serializing on
  /// admission.
  static RuntimeOptions TestRuntimeOptions() {
    RuntimeOptions options;
    options.num_frames = 64;
    options.num_threads = 4;
    options.io_threads = 2;
    return options;
  }

  void StartService(ServiceOptions sopt,
                    RuntimeOptions ropt = TestRuntimeOptions()) {
    if (sopt.session_max_frames == 0) sopt.session_max_frames = 20;
    runtime_ = std::make_unique<Runtime>(disk_.get(), ropt);
    service_ = std::make_unique<QueryService>(runtime_.get(), sopt);
    Status s = service_->Start();
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  std::unique_ptr<QueryClient> Connect() {
    auto client = std::make_unique<QueryClient>();
    Status s = client->Connect("127.0.0.1", service_->port());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return client;
  }

  std::filesystem::path dir_;
  Graph graph_;
  std::unique_ptr<DiskGraph> disk_;
  std::unique_ptr<Runtime> runtime_;
  std::unique_ptr<QueryService> service_;
};

TEST_F(ServiceTest, EightConcurrentClientsMatchGoldenCounts) {
  MetricsProbe probe;
  ServiceOptions sopt;
  sopt.num_workers = 3;
  sopt.max_queue_depth = 64;
  StartService(sopt);

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures] {
      QueryClient client;
      Status s = client.Connect("127.0.0.1", service_->port());
      if (!s.ok()) {
        failures[c] = s.ToString();
        return;
      }
      // Each client walks q1..q5 starting at a different offset so the
      // plan cache and admission queue see interleaved shapes.
      for (int i = 0; i < 5; ++i) {
        const int qi = (c + i) % 5;
        ClientRequest req;
        req.query = "q" + std::to_string(qi + 1);
        auto result = client.Run(req);
        if (!result.ok()) {
          failures[c] = result.status().ToString();
          return;
        }
        if (result->code != WireCode::kOk ||
            result->embeddings != kGoldenER[qi]) {
          failures[c] = req.query + ": code " +
                        WireCodeName(result->code) + ", " +
                        std::to_string(result->embeddings) + " != " +
                        std::to_string(kGoldenER[qi]);
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const StatusInfo info = service_->Snapshot();
  EXPECT_EQ(info.received, 40u);
  EXPECT_EQ(info.admitted, 40u);
  EXPECT_EQ(info.completed, 40u);
  EXPECT_EQ(info.received, info.admitted + info.rejected_overload +
                               info.rejected_draining + info.rejected_invalid);
  EXPECT_EQ(info.admitted, info.completed + info.failed + info.cancelled +
                               info.deadline_expired);

  // The same invariant through the process-wide service.* counters.
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(probe.Delta("service.requests_received"),
              probe.Delta("service.requests_admitted") +
                  probe.Delta("service.requests_rejected_overload") +
                  probe.Delta("service.requests_rejected_draining") +
                  probe.Delta("service.requests_rejected_invalid"));
  }
  ExpectMetricDelta(probe, "service.requests_received", 40);
  ExpectMetricDelta(probe, "service.requests_completed", 40);
}

TEST_F(ServiceTest, StreamedEmbeddingsMatchGoldenTriangleCount) {
  ServiceOptions sopt;
  sopt.progress_interval_ms = 0;  // a PROGRESS frame per retired window
  StartService(sopt);
  auto client = Connect();

  ClientRequest req;
  req.query = "q1";  // triangle
  req.stream_embeddings = true;
  ASSERT_TRUE(client->Submit(req).ok());

  std::uint64_t last_progress = 0;
  bool monotone = true;
  std::uint64_t valid_triangles = 0;
  auto result = client->Await(
      [&](std::uint64_t embeddings) {
        if (embeddings < last_progress) monotone = false;
        last_progress = embeddings;
      },
      [&](const std::vector<VertexId>& m) {
        ASSERT_EQ(m.size(), 3u);
        if (graph_.HasEdge(m[0], m[1]) && graph_.HasEdge(m[1], m[2]) &&
            graph_.HasEdge(m[0], m[2])) {
          ++valid_triangles;
        }
      });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, WireCode::kOk);
  EXPECT_EQ(result->embeddings, kGoldenER[0]);
  EXPECT_EQ(result->streamed_embeddings, kGoldenER[0]);
  EXPECT_EQ(valid_triangles, kGoldenER[0])
      << "a streamed mapping was not a triangle of the data graph";
  EXPECT_TRUE(monotone) << "PROGRESS counts must be non-decreasing";
  EXPECT_GE(result->progress_frames, 1u);
  EXPECT_LE(last_progress, kGoldenER[0]);
}

TEST_F(ServiceTest, StreamedEmbeddingCapIsHonored) {
  StartService({});
  auto client = Connect();
  ClientRequest req;
  req.query = "q5";
  req.stream_embeddings = true;
  req.max_embeddings = 7;
  auto result = client->Run(req);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, WireCode::kOk);
  EXPECT_EQ(result->embeddings, kGoldenER[4]);  // the count is never capped
  EXPECT_EQ(result->streamed_embeddings, 7u);
}

TEST_F(ServiceTest, QueueFullSubmissionsGetOverloaded) {
  MetricsProbe probe;
  RequestGate gate;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.max_queue_depth = 1;
  sopt.on_request_start = [&gate](std::uint64_t) { gate.Enter(); };
  StartService(sopt);

  auto held = Connect();     // runs (held inside the hook)
  auto queued = Connect();   // sits in the queue
  auto shed = Connect();     // rejected: queue full

  ASSERT_TRUE(held->Submit({.query = "q1"}).ok());
  gate.AwaitEntered(1);  // the worker holds `held`, the queue is empty
  ASSERT_TRUE(queued->Submit({.query = "q1"}).ok());

  Status rejected = shed->Submit({.query = "q1"});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted)
      << rejected.ToString();

  gate.Release();
  auto held_result = held->Await();
  ASSERT_TRUE(held_result.ok()) << held_result.status().ToString();
  EXPECT_EQ(held_result->code, WireCode::kOk);
  EXPECT_EQ(held_result->embeddings, kGoldenER[0]);
  auto queued_result = queued->Await();
  ASSERT_TRUE(queued_result.ok()) << queued_result.status().ToString();
  EXPECT_EQ(queued_result->code, WireCode::kOk);

  const StatusInfo info = service_->Snapshot();
  EXPECT_EQ(info.received, 3u);
  EXPECT_EQ(info.admitted, 2u);
  EXPECT_EQ(info.rejected_overload, 1u);
  ExpectMetricDelta(probe, "service.requests_rejected_overload", 1);
}

TEST_F(ServiceTest, DeadlineExpiredRequestReturnsTypedStatus) {
  RequestGate gate;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.on_request_start = [&gate](std::uint64_t) { gate.Enter(); };
  StartService(sopt);

  auto held = Connect();
  auto expiring = Connect();
  ASSERT_TRUE(held->Submit({.query = "q1"}).ok());
  gate.AwaitEntered(1);
  // Expires in the queue while the only worker is held.
  ASSERT_TRUE(expiring->Submit({.query = "q1", .deadline_ms = 30}).ok());

  auto expired = expiring->Await();
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  EXPECT_EQ(expired->code, WireCode::kDeadlineExceeded);

  gate.Release();
  auto held_result = held->Await();
  ASSERT_TRUE(held_result.ok());
  EXPECT_EQ(held_result->code, WireCode::kOk);

  const StatusInfo info = service_->Snapshot();
  EXPECT_EQ(info.deadline_expired, 1u);
  EXPECT_EQ(info.admitted, info.completed + info.failed + info.cancelled +
                               info.deadline_expired);
}

TEST_F(ServiceTest, CancelledRequestReturnsTypedStatus) {
  RequestGate gate;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.on_request_start = [&gate](std::uint64_t) { gate.Enter(); };
  StartService(sopt);

  auto client = Connect();
  ASSERT_TRUE(client->Submit({.query = "q5"}).ok());
  gate.AwaitEntered(1);  // held before the session starts
  ASSERT_TRUE(client->Cancel().ok());
  gate.Release();

  auto result = client->Await();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->code, WireCode::kCancelled);

  // The session slot was reclaimed: the same connection still serves.
  auto after = client->Run({.query = "q1"});
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->code, WireCode::kOk);
  EXPECT_EQ(after->embeddings, kGoldenER[0]);
  EXPECT_EQ(service_->Snapshot().cancelled, 1u);
}

TEST_F(ServiceTest, CancelMidRunNeverCrashesOrLeaks) {
  // Non-deterministic timing by design: CANCEL races the running session.
  // Whatever side wins, the request must finish with a typed code and the
  // ledger must balance (this is the TSan target for the cancel path).
  StartService({});
  for (int round = 0; round < 5; ++round) {
    auto client = Connect();
    ASSERT_TRUE(client->Submit({.query = "q5"}).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(round));
    ASSERT_TRUE(client->Cancel().ok());
    auto result = client->Await();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->code == WireCode::kOk ||
                result->code == WireCode::kCancelled)
        << WireCodeName(result->code);
    if (result->code == WireCode::kOk) {
      EXPECT_EQ(result->embeddings, kGoldenER[4]);
    }
  }
  const StatusInfo info = service_->Snapshot();
  EXPECT_EQ(info.admitted, 5u);
  EXPECT_EQ(info.admitted, info.completed + info.failed + info.cancelled +
                               info.deadline_expired);
  EXPECT_EQ(info.active_requests, 0u);
  EXPECT_EQ(info.queue_depth, 0u);
}

TEST_F(ServiceTest, ShutdownDrainsInFlightAndRejectsNewWork) {
  MetricsProbe probe;
  RequestGate gate;
  ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.metrics_path = (dir_ / "metrics.json").string();
  sopt.on_request_start = [&gate](std::uint64_t) { gate.Enter(); };
  StartService(sopt);

  auto held = Connect();
  auto queued = Connect();
  auto late = Connect();     // connected pre-drain, submits post-drain
  auto shutter = Connect();  // issues the SHUTDOWN

  ASSERT_TRUE(held->Submit({.query = "q1"}).ok());
  gate.AwaitEntered(1);
  ASSERT_TRUE(queued->Submit({.query = "q2"}).ok());

  std::thread shutdown_thread([&shutter] {
    Status s = shutter->Shutdown();
    EXPECT_TRUE(s.ok()) << s.ToString();
  });
  while (!service_->draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Draining: new submissions are shed with the typed SHUTTING_DOWN code.
  Status refused = late->Submit({.query = "q1"});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition)
      << refused.ToString();

  // In-flight work still completes: the drain waits for it.
  gate.Release();
  auto held_result = held->Await();
  ASSERT_TRUE(held_result.ok()) << held_result.status().ToString();
  EXPECT_EQ(held_result->code, WireCode::kOk);
  EXPECT_EQ(held_result->embeddings, kGoldenER[0]);
  auto queued_result = queued->Await();
  ASSERT_TRUE(queued_result.ok()) << queued_result.status().ToString();
  EXPECT_EQ(queued_result->code, WireCode::kOk);
  EXPECT_EQ(queued_result->embeddings, kGoldenER[1]);
  shutdown_thread.join();

  // Metrics were flushed as part of the drain, before the ACK.
  EXPECT_TRUE(std::filesystem::exists(sopt.metrics_path));

  const StatusInfo info = service_->Snapshot();
  EXPECT_TRUE(info.draining);
  EXPECT_EQ(info.received, 3u);
  EXPECT_EQ(info.admitted, 2u);
  EXPECT_EQ(info.rejected_draining, 1u);
  EXPECT_EQ(info.completed, 2u);
  EXPECT_EQ(info.received, info.admitted + info.rejected_overload +
                               info.rejected_draining + info.rejected_invalid);
  ExpectMetricDelta(probe, "service.requests_rejected_draining", 1);
}

TEST_F(ServiceTest, PlanCacheSingleMissUnderConcurrentSameQueryLoad) {
  // Satellite: N clients submitting the same canonical query produce one
  // plan-cache miss and N-1 hits. One worker serializes the sessions so
  // the first run's preparation is finished before the second looks up.
  ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.max_queue_depth = 16;
  StartService(sopt);

  MetricsProbe probe;
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &failures] {
      QueryClient client;
      Status s = client.Connect("127.0.0.1", service_->port());
      if (!s.ok()) {
        failures[c] = s.ToString();
        return;
      }
      auto result = client.Run({.query = "q3"});
      if (!result.ok()) {
        failures[c] = result.status().ToString();
      } else if (result->code != WireCode::kOk ||
                 result->embeddings != kGoldenER[2]) {
        failures[c] = "bad result";
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }
  ExpectMetricDelta(probe, "plancache.misses", 1);
  ExpectMetricDelta(probe, "plancache.hits", kClients - 1);
}

TEST_F(ServiceTest, InvalidQueryIsRejectedTyped) {
  StartService({});
  auto client = Connect();
  Status rejected = client->Submit({.query = "notashape"});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument)
      << rejected.ToString();

  // The connection survives an invalid query.
  auto ok = client->Run({.query = "q1"});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->embeddings, kGoldenER[0]);

  const StatusInfo info = service_->Snapshot();
  EXPECT_EQ(info.rejected_invalid, 1u);
  EXPECT_EQ(info.received, info.admitted + info.rejected_overload +
                               info.rejected_draining + info.rejected_invalid);
}

TEST_F(ServiceTest, OversizedFrameHeaderGetsProtocolErrorAndClose) {
  StartService({});
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(service_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  // Declared payload far past kMaxFramePayload poisons the connection.
  const unsigned char header[5] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  ASSERT_EQ(::send(fd, header, sizeof(header), 0), 5);

  auto frame = ReadFrame(fd);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kError);
  RejectFrame reject;
  ASSERT_TRUE(DecodeReject(frame->payload, &reject).ok());
  EXPECT_EQ(reject.code, WireCode::kProtocolError);

  // The service hangs up after the parting ERROR.
  auto closed = ReadFrame(fd);
  EXPECT_FALSE(closed.ok());
  ::close(fd);
}

TEST_F(ServiceTest, StartFailsOnDegenerateRuntime) {
  RuntimeOptions bad;
  bad.io_threads = 0;
  runtime_ = std::make_unique<Runtime>(disk_.get(), bad);
  service_ = std::make_unique<QueryService>(runtime_.get(), ServiceOptions{});
  Status s = service_->Start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("io_threads"), std::string::npos) << s.ToString();
}

TEST_F(ServiceTest, OpenServedGraphKeepsNotFoundTyped) {
  auto missing = OpenServedGraph((dir_ / "nope.db").string());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound)
      << missing.status().ToString();
  EXPECT_NE(missing.status().message().find("nope.db"), std::string::npos);
}

}  // namespace
}  // namespace dualsim::service
