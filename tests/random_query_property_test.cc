#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "baseline/psgl.h"
#include "baseline/twintwig.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "graph/reorder.h"
#include "storage/disk_graph.h"
#include "util/random.h"

namespace dualsim {
namespace {

/// Property fuzz: for RANDOM connected query graphs (not just the paper's
/// five), the disk engine, TwinTwigJoin and PSGL must all agree with the
/// brute-force oracle. This exercises arbitrary RBI colorings, v-group
/// structures and matching orders.
QueryGraph RandomConnectedQuery(Random& rng, int num_vertices) {
  while (true) {
    QueryGraph q(static_cast<std::uint8_t>(num_vertices));
    // Random spanning tree first (guarantees connectivity)...
    for (int v = 1; v < num_vertices; ++v) {
      q.AddEdge(static_cast<QueryVertex>(rng.Uniform(v)),
                static_cast<QueryVertex>(v));
    }
    // ...then sprinkle extra edges.
    const int extra = static_cast<int>(rng.Uniform(num_vertices));
    for (int i = 0; i < extra; ++i) {
      const auto a = static_cast<QueryVertex>(rng.Uniform(num_vertices));
      const auto b = static_cast<QueryVertex>(rng.Uniform(num_vertices));
      if (a != b) q.AddEdge(a, b);
    }
    if (q.IsConnected()) return q;
  }
}

class RandomQueryPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_P(RandomQueryPropertyTest, AllEnginesAgreeWithOracle) {
  const int seed = GetParam();
  Random rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  // Random data graph flavor per seed.
  Graph raw;
  switch (seed % 3) {
    case 0:
      raw = ErdosRenyi(80 + seed * 7, 300 + seed * 23, seed);
      break;
    case 1:
      raw = RMat(7, 400 + seed * 17, 0.55, 0.16, 0.16, seed);
      break;
    default:
      raw = BipartitePowerLaw(40 + seed, 50, 250 + seed * 11, seed);
  }
  Graph g = ReorderByDegree(raw);
  const std::string path = (dir_ / "g.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());

  EngineOptions options;
  options.buffer_fraction = 0.15 + 0.05 * (seed % 3);
  options.num_threads = 1 + seed % 4;
  DualSimEngine engine(disk->get(), options);

  const int num_vertices = 3 + seed % 3;  // 3..5 query vertices
  for (int trial = 0; trial < 3; ++trial) {
    QueryGraph q = RandomConnectedQuery(rng, num_vertices);
    const std::uint64_t want = CountOccurrences(g, q);

    auto dual = engine.Run(q);
    ASSERT_TRUE(dual.ok()) << dual.status().ToString() << " " << q.ToString();
    EXPECT_EQ(dual->embeddings, want) << q.ToString();

    auto ttj = RunTwinTwigJoin(g, q);
    ASSERT_TRUE(ttj.ok());
    ASSERT_FALSE(ttj->failed);
    EXPECT_EQ(ttj->final_results, want) << q.ToString();

    auto psgl = RunPsgl(g, q);
    ASSERT_TRUE(psgl.ok());
    ASSERT_FALSE(psgl->failed);
    EXPECT_EQ(psgl->final_results, want) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace dualsim
