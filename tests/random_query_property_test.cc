#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "baseline/bruteforce.h"
#include "baseline/psgl.h"
#include "baseline/twintwig.h"
#include "core/engine.h"
#include "core/intersect.h"
#include "runtime/query_session.h"
#include "runtime/runtime.h"
#include "storage/disk_graph.h"
#include "testkit/fuzz_util.h"

namespace dualsim {
namespace {

using testkit::FuzzConfig;
using testkit::FuzzConfigFromEnv;
using testkit::RandomConnectedQuery;
using testkit::RandomDataGraph;
using testkit::RandomLabeledDataGraph;
using testkit::RandomLabeledQuery;
using testkit::RelabelQuery;
using testkit::ReproHint;

/// Property fuzz: for RANDOM connected query graphs (not just the paper's
/// five), the disk engine, TwinTwigJoin and PSGL must all agree with the
/// brute-force oracle. This exercises arbitrary RBI colorings, v-group
/// structures and matching orders. DUALSIM_FUZZ_SEED / DUALSIM_FUZZ_ITERS
/// override the per-seed trial count for soak runs.
class RandomQueryPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_fuzz_" + std::to_string(::getpid()) + "_" +
            std::to_string(GetParam()));
    std::filesystem::create_directories(dir_);
    // Rotate the forced intersection kernel with the seed (mirrors the
    // io-backend parameterization of the storage suites): every kernel
    // variant gets fuzzed against the oracle without multiplying the
    // suite's runtime. Unavailable kernels degrade to the dispatcher.
    static const IntersectKernel kKernels[] = {
        IntersectKernel::kAuto, IntersectKernel::kScalar,
        IntersectKernel::kGalloping, IntersectKernel::kAvx2,
        IntersectKernel::kBitmap};
    IntersectKernel kernel = kKernels[GetParam() % 5];
    if (kernel == IntersectKernel::kAvx2 && !Avx2Available()) {
      kernel = IntersectKernel::kAuto;
    }
    ASSERT_TRUE(SetIntersectKernel(kernel).ok());
  }
  void TearDown() override {
    (void)SetIntersectKernel(IntersectKernel::kAuto);
    std::filesystem::remove_all(dir_);
  }
  std::filesystem::path dir_;
};

TEST_P(RandomQueryPropertyTest, AllEnginesAgreeWithOracle) {
  const int param = GetParam();
  const FuzzConfig cfg = FuzzConfigFromEnv(0, 3);
  const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(param);
  Random rng(seed * 7919 + 13);

  Graph g = RandomDataGraph(seed, param, param);
  const std::string path = (dir_ / "g.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());

  EngineOptions options;
  options.buffer_fraction = 0.15 + 0.05 * (param % 3);
  options.num_threads = 1 + param % 4;
  DualSimEngine engine(disk->get(), options);

  const int num_vertices = 3 + param % 3;  // 3..5 query vertices
  for (int trial = 0; trial < cfg.iters; ++trial) {
    QueryGraph q = RandomConnectedQuery(rng, num_vertices);
    const std::uint64_t want = CountOccurrences(g, q);

    auto dual = engine.Run(q);
    ASSERT_TRUE(dual.ok()) << dual.status().ToString() << " " << q.ToString()
                           << "\n" << ReproHint(seed);
    EXPECT_EQ(dual->embeddings, want) << q.ToString() << "\n"
                                      << ReproHint(seed);

    auto ttj = RunTwinTwigJoin(g, q);
    ASSERT_TRUE(ttj.ok());
    ASSERT_FALSE(ttj->failed);
    EXPECT_EQ(ttj->final_results, want) << q.ToString() << "\n"
                                        << ReproHint(seed);

    auto psgl = RunPsgl(g, q);
    ASSERT_TRUE(psgl.ok());
    ASSERT_FALSE(psgl->failed);
    EXPECT_EQ(psgl->final_results, want) << q.ToString() << "\n"
                                         << ReproHint(seed);
  }
}

/// Plan-cache warm path: running a query twice through one Runtime must
/// hit the cache the second time and still return the identical count —
/// and so must an isomorphic relabeling of the query, which shares the
/// canonical form and therefore the cached plan.
TEST_P(RandomQueryPropertyTest, PlanCacheWarmPathMatchesColdPath) {
  const int param = GetParam();
  const FuzzConfig cfg = FuzzConfigFromEnv(100, 3);
  const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(param);
  Random rng(seed * 104729 + 7);

  Graph g = RandomDataGraph(seed, param + 1, param);
  const std::string path = (dir_ / "warm.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());

  Runtime runtime(disk->get(), RuntimeOptions{});
  QuerySession session(&runtime);

  for (int trial = 0; trial < cfg.iters; ++trial) {
    const QueryGraph q = RandomConnectedQuery(rng, 3 + param % 3);
    const std::uint64_t want = CountOccurrences(g, q);

    auto cold = session.Run(q);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString() << "\n"
                           << ReproHint(seed);
    EXPECT_EQ(cold->embeddings, want) << q.ToString() << "\n"
                                      << ReproHint(seed);

    auto warm = session.Run(q);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    EXPECT_TRUE(warm->plan_cached) << q.ToString();
    EXPECT_GT(warm->plan_cache_hits, cold->plan_cache_hits);
    EXPECT_EQ(warm->embeddings, want) << q.ToString() << "\n"
                                      << ReproHint(seed);

    const QueryGraph relabeled = RelabelQuery(q, rng);
    auto iso = session.Run(relabeled);
    ASSERT_TRUE(iso.ok()) << iso.status().ToString();
    EXPECT_TRUE(iso->plan_cached)
        << q.ToString() << " vs " << relabeled.ToString();
    EXPECT_EQ(iso->embeddings, want)
        << q.ToString() << " vs " << relabeled.ToString() << "\n"
        << ReproHint(seed);
  }
}

/// Labeled property fuzz: random labeled queries (mixed constrained and
/// wildcard vertices) over random labeled data graphs must agree with the
/// label-aware brute-force oracle — with the candidate filter both on and
/// off, since filtering must never change counts. TwinTwig/PSGL stay out
/// of this leg: they are unlabeled baselines.
TEST_P(RandomQueryPropertyTest, LabeledQueriesAgreeWithOracle) {
  const int param = GetParam();
  const FuzzConfig cfg = FuzzConfigFromEnv(200, 3);
  const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(param);
  Random rng(seed * 65537 + 3);

  const std::uint32_t num_labels = 2 + param % 3;  // 2..4 labels
  Graph g = RandomLabeledDataGraph(seed, param, param, num_labels);
  ASSERT_TRUE(g.HasLabels());
  const std::string path = (dir_ / "labeled.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->HasLabels());

  EngineOptions options;
  options.buffer_fraction = 0.15 + 0.05 * (param % 3);
  options.num_threads = 1 + param % 4;
  options.candidate_filter = (param % 2) == 0;
  DualSimEngine engine(disk->get(), options);

  for (int trial = 0; trial < cfg.iters; ++trial) {
    const QueryGraph q = RandomLabeledQuery(rng, 3 + param % 3, num_labels);
    const std::uint64_t want = CountOccurrences(g, q);

    auto dual = engine.Run(q);
    ASSERT_TRUE(dual.ok()) << dual.status().ToString() << " " << q.ToString()
                           << "\n" << ReproHint(seed);
    EXPECT_EQ(dual->embeddings, want)
        << q.ToString() << " (candidate_filter="
        << (options.candidate_filter ? "on" : "off") << ")\n"
        << ReproHint(seed);
  }
}

/// Labeled plan-cache aliasing: an isomorphic relabeling of a labeled
/// query (labels carried along the permutation) shares the canonical form
/// and the cached plan; a query with identical shape but different labels
/// must NOT alias it — it gets its own plan and its own (correct) count.
TEST_P(RandomQueryPropertyTest, LabeledPlansNeverAliasAcrossLabels) {
  const int param = GetParam();
  const FuzzConfig cfg = FuzzConfigFromEnv(300, 3);
  const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(param);
  Random rng(seed * 1299709 + 11);

  const std::uint32_t num_labels = 3;
  Graph g = RandomLabeledDataGraph(seed, param + 2, param, num_labels);
  const std::string path = (dir_ / "alias.db").string();
  ASSERT_TRUE(BuildDiskGraph(g, path, 512).ok());
  auto disk = DiskGraph::Open(path, false);
  ASSERT_TRUE(disk.ok());

  Runtime runtime(disk->get(), RuntimeOptions{});
  QuerySession session(&runtime);

  for (int trial = 0; trial < cfg.iters; ++trial) {
    const QueryGraph q = RandomLabeledQuery(rng, 3 + param % 3, num_labels);
    const std::uint64_t want = CountOccurrences(g, q);

    auto cold = session.Run(q);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString() << "\n"
                           << ReproHint(seed);
    EXPECT_EQ(cold->embeddings, want) << q.ToString() << "\n"
                                      << ReproHint(seed);

    // Isomorphic relabeling (labels permuted with the vertices): same
    // canonical form, cached plan, identical count.
    const QueryGraph iso_q = RelabelQuery(q, rng);
    auto iso = session.Run(iso_q);
    ASSERT_TRUE(iso.ok()) << iso.status().ToString();
    EXPECT_TRUE(iso->plan_cached)
        << q.ToString() << " vs " << iso_q.ToString();
    EXPECT_EQ(iso->embeddings, want)
        << q.ToString() << " vs " << iso_q.ToString() << "\n"
        << ReproHint(seed);

    // Same shape, shifted labels: must not alias the cached plan's counts.
    QueryGraph shifted = q;
    for (QueryVertex u = 0; u < shifted.NumVertices(); ++u) {
      if (shifted.Label(u) != kAnyLabel) {
        shifted.SetLabel(
            u, static_cast<LabelId>((shifted.Label(u) + 1) % num_labels));
      }
    }
    auto other = session.Run(shifted);
    ASSERT_TRUE(other.ok()) << other.status().ToString();
    EXPECT_EQ(other->embeddings, CountOccurrences(g, shifted))
        << shifted.ToString() << "\n" << ReproHint(seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace dualsim
