#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <latch>
#include <thread>
#include <unistd.h>

#include "util/thread_pool.h"

namespace dualsim {
namespace {

constexpr std::size_t kPage = 128;

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_bp_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto file = PageFile::Create((dir_ / "p.pages").string(), kPage);
    ASSERT_TRUE(file.ok());
    file_ = std::move(*file);
    std::vector<std::byte> page(kPage);
    for (PageId pid = 0; pid < 16; ++pid) {
      std::memset(page.data(), static_cast<int>(pid + 1), kPage);
      ASSERT_TRUE(file_->WritePage(pid, page.data()).ok());
    }
    io_ = std::make_unique<ThreadPool>(2);
  }
  void TearDown() override {
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<ThreadPool> io_;
};

TEST_F(BufferPoolTest, PinReadsCorrectPage) {
  BufferPool pool(file_.get(), 4, io_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(3, &data).ok());
  EXPECT_EQ(static_cast<std::uint8_t>(data[0]), 4u);
  pool.Unpin(3);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_F(BufferPoolTest, SecondPinIsLogicalHit) {
  BufferPool pool(file_.get(), 4, io_.get());
  const std::byte* a = nullptr;
  const std::byte* b = nullptr;
  ASSERT_TRUE(pool.Pin(5, &a).ok());
  ASSERT_TRUE(pool.Pin(5, &b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_EQ(pool.stats().logical_hits, 1u);
  pool.Unpin(5);
  pool.Unpin(5);
}

TEST_F(BufferPoolTest, EvictsLruWhenFull) {
  BufferPool pool(file_.get(), 2, io_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  pool.Unpin(0);
  ASSERT_TRUE(pool.Pin(1, &data).ok());
  pool.Unpin(1);
  // Frame count is 2; pinning a third page must evict page 0 (oldest).
  ASSERT_TRUE(pool.Pin(2, &data).ok());
  pool.Unpin(2);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_FALSE(pool.Contains(0));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST_F(BufferPoolTest, AllPinnedIsResourceExhausted) {
  BufferPool pool(file_.get(), 2, io_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  ASSERT_TRUE(pool.Pin(1, &data).ok());
  EXPECT_EQ(pool.Pin(2, &data).code(), StatusCode::kResourceExhausted);
  pool.Unpin(0);
  pool.Unpin(1);
}

TEST_F(BufferPoolTest, AsyncPinDeliversData) {
  BufferPool pool(file_.get(), 4, io_.get());
  std::latch done(1);
  std::atomic<int> value{-1};
  pool.PinAsync(7, [&](Status s, PageId pid, const std::byte* data) {
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(pid, 7u);
    value = static_cast<int>(data[0]);
    done.count_down();
  });
  done.wait();
  EXPECT_EQ(value.load(), 8);
  pool.Unpin(7);
}

TEST_F(BufferPoolTest, ConcurrentAsyncPinsOfSamePage) {
  BufferPool pool(file_.get(), 4, io_.get());
  constexpr int kPins = 32;
  std::latch done(kPins);
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kPins; ++i) {
    pool.PinAsync(2, [&](Status s, PageId, const std::byte* data) {
      if (s.ok() && static_cast<std::uint8_t>(data[0]) == 3u) {
        ok_count.fetch_add(1);
      }
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(ok_count.load(), kPins);
  // Only one physical read despite 32 pins.
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  for (int i = 0; i < kPins; ++i) pool.Unpin(2);
}

TEST_F(BufferPoolTest, ParallelMixedWorkload) {
  BufferPool pool(file_.get(), 8, io_.get());
  ThreadPool workers(6);
  std::atomic<int> errors{0};
  ParallelFor(workers, 500, [&](std::size_t i) {
    const PageId pid = static_cast<PageId>(i % 16);
    const std::byte* data = nullptr;
    Status s = pool.Pin(pid, &data);
    if (!s.ok()) {
      // Transient exhaustion is possible with 6 concurrent pins max 8
      // frames; anything else is a bug.
      if (s.code() != StatusCode::kResourceExhausted) errors.fetch_add(1);
      return;
    }
    if (static_cast<std::uint8_t>(data[0]) != pid + 1) errors.fetch_add(1);
    pool.Unpin(pid);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(BufferPoolTest, StatsResetWorks) {
  BufferPool pool(file_.get(), 4, io_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  pool.Unpin(0);
  EXPECT_GT(pool.stats().physical_reads, 0u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST_F(BufferPoolTest, AsyncStressWithConcurrentResets) {
  // Hammer PinAsync/Unpin from many threads while another thread calls
  // ResetStats — the counters may be clobbered mid-run but the pool must
  // stay consistent (correct bytes, no lost callbacks). TSan target.
  BufferPool pool(file_.get(), 8, io_.get());
  ThreadPool workers(6);
  constexpr int kRounds = 400;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pool.ResetStats();
      (void)pool.stats();
      std::this_thread::yield();
    }
  });
  ParallelFor(workers, kRounds, [&](std::size_t i) {
    const PageId pid = static_cast<PageId>((i * 7) % 16);
    std::latch done(1);
    std::atomic<bool> pinned{false};
    pool.PinAsync(pid, [&](Status s, PageId got, const std::byte* data) {
      if (s.ok()) {
        if (got != pid || static_cast<std::uint8_t>(data[0]) != pid + 1) {
          errors.fetch_add(1);
        }
        pinned.store(true, std::memory_order_release);
      } else if (s.code() != StatusCode::kResourceExhausted) {
        // Transient exhaustion is legal with 6 pinners on 8 frames.
        errors.fetch_add(1);
      }
      done.count_down();
    });
    done.wait();
    if (pinned.load(std::memory_order_acquire)) pool.Unpin(pid);
  });
  stop.store(true, std::memory_order_release);
  resetter.join();
  EXPECT_EQ(errors.load(), 0);
  // Every frame must be unpinned again: the whole pool is evictable.
  EXPECT_EQ(pool.AvailableFrames(), 8u);
}

TEST_F(BufferPoolTest, AvailableFramesTracksPins) {
  BufferPool pool(file_.get(), 3, io_.get());
  EXPECT_EQ(pool.AvailableFrames(), 3u);
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  EXPECT_EQ(pool.AvailableFrames(), 2u);
  pool.Unpin(0);
  EXPECT_EQ(pool.AvailableFrames(), 3u);  // resident but unpinned
}

}  // namespace
}  // namespace dualsim
