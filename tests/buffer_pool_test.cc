#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <latch>
#include <thread>
#include <unistd.h>

#include "storage/io_backend.h"
#include "util/thread_pool.h"

namespace dualsim {
namespace {

constexpr std::size_t kPage = 128;

/// Every pool test runs once per I/O backend (the suite is instantiated
/// over both names; the uring variant skips gracefully on kernels or
/// builds without io_uring support).
class BufferPoolTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dualsim_bp_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    auto file = PageFile::Create((dir_ / "p.pages").string(), kPage);
    ASSERT_TRUE(file.ok());
    file_ = std::move(*file);
    std::vector<std::byte> page(kPage);
    for (PageId pid = 0; pid < 16; ++pid) {
      std::memset(page.data(), static_cast<int>(pid + 1), kPage);
      ASSERT_TRUE(file_->WritePage(pid, page.data()).ok());
    }
    io_ = std::make_unique<ThreadPool>(2);
    if (GetParam() == "uring" && !UringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable: " << UringUnavailableReason();
    }
    auto kind = ParseIoBackendKind(GetParam());
    ASSERT_TRUE(kind.ok()) << kind.status().ToString();
    auto backend = CreateIoBackend(*kind, file_.get(), io_.get());
    ASSERT_TRUE(backend.ok()) << backend.status().ToString();
    backend_ = std::move(*backend);
  }
  void TearDown() override {
    backend_.reset();
    file_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::filesystem::path dir_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<ThreadPool> io_;
  std::unique_ptr<IoBackend> backend_;
};

TEST_P(BufferPoolTest, PinReadsCorrectPage) {
  BufferPool pool(file_.get(), 4, backend_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(3, &data).ok());
  EXPECT_EQ(static_cast<std::uint8_t>(data[0]), 4u);
  pool.Unpin(3);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
}

TEST_P(BufferPoolTest, SecondPinIsLogicalHit) {
  BufferPool pool(file_.get(), 4, backend_.get());
  const std::byte* a = nullptr;
  const std::byte* b = nullptr;
  ASSERT_TRUE(pool.Pin(5, &a).ok());
  ASSERT_TRUE(pool.Pin(5, &b).ok());
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  EXPECT_EQ(pool.stats().logical_hits, 1u);
  pool.Unpin(5);
  pool.Unpin(5);
}

TEST_P(BufferPoolTest, EvictsLruWhenFull) {
  BufferPool pool(file_.get(), 2, backend_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  pool.Unpin(0);
  ASSERT_TRUE(pool.Pin(1, &data).ok());
  pool.Unpin(1);
  // Frame count is 2; pinning a third page must evict page 0 (oldest).
  ASSERT_TRUE(pool.Pin(2, &data).ok());
  pool.Unpin(2);
  EXPECT_TRUE(pool.Contains(1));
  EXPECT_TRUE(pool.Contains(2));
  EXPECT_FALSE(pool.Contains(0));
  EXPECT_EQ(pool.stats().evictions, 1u);
}

TEST_P(BufferPoolTest, AllPinnedIsResourceExhausted) {
  BufferPool pool(file_.get(), 2, backend_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  ASSERT_TRUE(pool.Pin(1, &data).ok());
  EXPECT_EQ(pool.Pin(2, &data).code(), StatusCode::kResourceExhausted);
  pool.Unpin(0);
  pool.Unpin(1);
}

TEST_P(BufferPoolTest, AsyncPinDeliversData) {
  BufferPool pool(file_.get(), 4, backend_.get());
  std::latch done(1);
  std::atomic<int> value{-1};
  pool.PinAsync(7, [&](Status s, PageId pid, const std::byte* data) {
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(pid, 7u);
    value = static_cast<int>(data[0]);
    done.count_down();
  });
  done.wait();
  EXPECT_EQ(value.load(), 8);
  pool.Unpin(7);
}

TEST_P(BufferPoolTest, ConcurrentAsyncPinsOfSamePage) {
  BufferPool pool(file_.get(), 4, backend_.get());
  constexpr int kPins = 32;
  std::latch done(kPins);
  std::atomic<int> ok_count{0};
  for (int i = 0; i < kPins; ++i) {
    pool.PinAsync(2, [&](Status s, PageId, const std::byte* data) {
      if (s.ok() && static_cast<std::uint8_t>(data[0]) == 3u) {
        ok_count.fetch_add(1);
      }
      done.count_down();
    });
  }
  done.wait();
  EXPECT_EQ(ok_count.load(), kPins);
  // Only one physical read despite 32 pins.
  EXPECT_EQ(pool.stats().physical_reads, 1u);
  for (int i = 0; i < kPins; ++i) pool.Unpin(2);
}

TEST_P(BufferPoolTest, ParallelMixedWorkload) {
  BufferPool pool(file_.get(), 8, backend_.get());
  ThreadPool workers(6);
  std::atomic<int> errors{0};
  ParallelFor(workers, 500, [&](std::size_t i) {
    const PageId pid = static_cast<PageId>(i % 16);
    const std::byte* data = nullptr;
    Status s = pool.Pin(pid, &data);
    if (!s.ok()) {
      // Transient exhaustion is possible with 6 concurrent pins max 8
      // frames; anything else is a bug.
      if (s.code() != StatusCode::kResourceExhausted) errors.fetch_add(1);
      return;
    }
    if (static_cast<std::uint8_t>(data[0]) != pid + 1) errors.fetch_add(1);
    pool.Unpin(pid);
  });
  EXPECT_EQ(errors.load(), 0);
}

TEST_P(BufferPoolTest, StatsResetWorks) {
  BufferPool pool(file_.get(), 4, backend_.get());
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  pool.Unpin(0);
  EXPECT_GT(pool.stats().physical_reads, 0u);
  pool.ResetStats();
  EXPECT_EQ(pool.stats().physical_reads, 0u);
}

TEST_P(BufferPoolTest, AsyncStressWithConcurrentResets) {
  // Hammer PinAsync/Unpin from many threads while another thread calls
  // ResetStats — the counters may be clobbered mid-run but the pool must
  // stay consistent (correct bytes, no lost callbacks). TSan target.
  BufferPool pool(file_.get(), 8, backend_.get());
  ThreadPool workers(6);
  constexpr int kRounds = 400;
  std::atomic<int> errors{0};
  std::atomic<bool> stop{false};
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_acquire)) {
      pool.ResetStats();
      (void)pool.stats();
      std::this_thread::yield();
    }
  });
  ParallelFor(workers, kRounds, [&](std::size_t i) {
    const PageId pid = static_cast<PageId>((i * 7) % 16);
    std::latch done(1);
    std::atomic<bool> pinned{false};
    pool.PinAsync(pid, [&](Status s, PageId got, const std::byte* data) {
      if (s.ok()) {
        if (got != pid || static_cast<std::uint8_t>(data[0]) != pid + 1) {
          errors.fetch_add(1);
        }
        pinned.store(true, std::memory_order_release);
      } else if (s.code() != StatusCode::kResourceExhausted) {
        // Transient exhaustion is legal with 6 pinners on 8 frames.
        errors.fetch_add(1);
      }
      done.count_down();
    });
    done.wait();
    if (pinned.load(std::memory_order_acquire)) pool.Unpin(pid);
  });
  stop.store(true, std::memory_order_release);
  resetter.join();
  EXPECT_EQ(errors.load(), 0);
  // Every frame must be unpinned again: the whole pool is evictable.
  EXPECT_EQ(pool.AvailableFrames(), 8u);
}

TEST_P(BufferPoolTest, AvailableFramesTracksPins) {
  BufferPool pool(file_.get(), 3, backend_.get());
  EXPECT_EQ(pool.AvailableFrames(), 3u);
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(0, &data).ok());
  EXPECT_EQ(pool.AvailableFrames(), 2u);
  pool.Unpin(0);
  EXPECT_EQ(pool.AvailableFrames(), 3u);  // resident but unpinned
}

TEST_P(BufferPoolTest, PinManyDeliversWholeWindow) {
  BufferPool pool(file_.get(), 8, backend_.get());
  const std::vector<PageId> pids = {1, 4, 9, 12, 15};
  std::latch done(pids.size());
  std::vector<std::atomic<int>> values(pids.size());
  for (auto& v : values) v = -1;
  pool.PinMany(pids, [&](std::size_t i, Status s, const std::byte* data) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    values[i] = static_cast<int>(data[0]);
    done.count_down();
  });
  done.wait();
  for (std::size_t i = 0; i < pids.size(); ++i) {
    EXPECT_EQ(values[i].load(), static_cast<int>(pids[i] + 1)) << i;
  }
  EXPECT_EQ(pool.stats().physical_reads, pids.size());
  for (PageId pid : pids) pool.Unpin(pid);
}

TEST_P(BufferPoolTest, PinManyMixesHitsMissesAndDuplicates) {
  BufferPool pool(file_.get(), 8, backend_.get());
  // Make page 3 resident so the window mixes an inline hit with misses,
  // and repeat page 6 so the duplicate piggybacks on the first read.
  const std::byte* warm = nullptr;
  ASSERT_TRUE(pool.Pin(3, &warm).ok());
  const std::vector<PageId> pids = {3, 6, 6, 11};
  std::latch done(pids.size());
  std::vector<std::atomic<int>> values(pids.size());
  for (auto& v : values) v = -1;
  pool.PinMany(pids, [&](std::size_t i, Status s, const std::byte* data) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    values[i] = static_cast<int>(data[0]);
    done.count_down();
  });
  done.wait();
  for (std::size_t i = 0; i < pids.size(); ++i) {
    EXPECT_EQ(values[i].load(), static_cast<int>(pids[i] + 1)) << i;
  }
  // One read warmed page 3; the window added only pages 6 and 11 — the
  // resident hit cost nothing and the duplicate 6 shared one read.
  EXPECT_EQ(pool.stats().physical_reads, 3u);
  EXPECT_EQ(pool.stats().logical_hits, 1u);  // the resident page 3
  pool.Unpin(3);
  for (PageId pid : pids) pool.Unpin(pid);
}

TEST_P(BufferPoolTest, PinManyLargerThanPoolReportsStarvation) {
  // 2 frames cannot hold a 5-page window: the overflow elements must
  // complete (with ResourceExhausted), never hang.
  BufferPool pool(file_.get(), 2, backend_.get());
  const std::vector<PageId> pids = {0, 1, 2, 3, 4};
  std::latch done(pids.size());
  std::atomic<int> ok{0};
  std::atomic<int> starved{0};
  std::atomic<int> other{0};
  std::mutex mu;
  std::vector<PageId> pinned;
  pool.PinMany(pids, [&](std::size_t i, Status s, const std::byte*) {
    if (s.ok()) {
      ok.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu);
      pinned.push_back(pids[i]);
    } else if (s.code() == StatusCode::kResourceExhausted) {
      starved.fetch_add(1);
    } else {
      other.fetch_add(1);
    }
    done.count_down();
  });
  done.wait();
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok.load() + starved.load(), static_cast<int>(pids.size()));
  EXPECT_LE(ok.load(), 2);
  for (PageId pid : pinned) pool.Unpin(pid);
}

TEST_P(BufferPoolTest, LegacyThreadPoolCtorStillWorks) {
  // The convenience constructor (pool owns a threadpool backend) is the
  // pre-IoBackend surface tests and tools rely on.
  BufferPool pool(file_.get(), 4, io_.get());
  EXPECT_STREQ(pool.backend_name(), "threadpool");
  const std::byte* data = nullptr;
  ASSERT_TRUE(pool.Pin(9, &data).ok());
  EXPECT_EQ(static_cast<std::uint8_t>(data[0]), 10u);
  pool.Unpin(9);
}

TEST_P(BufferPoolTest, BackendNameMatchesParam) {
  BufferPool pool(file_.get(), 4, backend_.get());
  EXPECT_EQ(std::string(pool.backend_name()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, BufferPoolTest,
                         ::testing::Values("threadpool", "uring"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dualsim
